#include "sim/experiment.hpp"

#include "common/log.hpp"
#include "trace/future_use.hpp"
#include "trace/workloads.hpp"

namespace zc {

namespace {

/**
 * Build per-core generators. OPT runs pre-generate and annotate a trace
 * long enough to cover warmup + measurement (trace-driven mode, paper
 * Section VI-B); other policies stream directly from the generators.
 */
std::vector<GeneratorPtr>
buildGenerators(const RunParams& p, const SystemConfig& cfg)
{
    const WorkloadProfile& w = WorkloadRegistry::byName(p.workload);
    std::vector<GeneratorPtr> gens;
    gens.reserve(cfg.numCores);

    bool opt = p.l2Spec.policy == PolicyKind::Opt;
    std::uint64_t instr_target = p.warmupInstr + p.measureInstr;

    for (std::uint32_t c = 0; c < cfg.numCores; c++) {
        auto gen = WorkloadRegistry::makeCoreGenerator(w, c, cfg.numCores,
                                                       p.seed);
        if (!opt) {
            gens.push_back(std::move(gen));
            continue;
        }
        // Record until the instruction budget (plus slack for the
        // interleaving overshoot) is covered.
        std::vector<MemRecord> trace;
        trace.reserve(instr_target / 4);
        std::uint64_t instr = 0;
        while (instr < instr_target + 10000) {
            MemRecord r = gen->next();
            instr += r.instGap + 1;
            trace.push_back(r);
        }
        FutureUseAnnotator::annotate(trace);
        gens.push_back(std::make_unique<ReplayGenerator>(std::move(trace)));
    }
    return gens;
}

} // namespace

RunResult
runExperiment(const RunParams& params)
{
    SystemConfig cfg = params.base;
    cfg.l2Spec = params.l2Spec;
    cfg.l2SerialLookup = params.serialLookup;
    cfg.seed = params.seed ^ 0x5a5a;
    cfg.l2Spec.walkTraceCapacity = params.walkTraceCapacity;
    cfg.epochInstr = params.epochInstr
                         ? params.epochInstr
                         : cfg.numCores * params.measureInstr / 8;

    CmpSystem sys(cfg);
    sys.setGenerators(buildGenerators(params, cfg));

    if (params.warmupInstr > 0) {
        sys.run(params.warmupInstr);
        sys.resetStats();
    }
    sys.run(params.measureInstr);

    const SystemStats& st = sys.stats();

    RunResult r;
    r.instructions = st.totalInstructions();
    r.cycles = st.maxCycles();
    r.ipc = st.aggregateIpc();
    r.mpki = st.l2Mpki();
    r.l2Accesses = st.l2Accesses;
    r.l2Misses = st.l2Misses;
    r.bankLatencyCycles = sys.bankLatencyCycles();

    std::uint64_t walks = 0, cand = 0, reloc = 0;
    for (std::uint32_t b = 0; b < sys.numBanks(); b++) {
        const ArrayStats& as = sys.bank(b).stats();
        r.l2TagAccesses += as.tagReads + as.tagWrites;
        if (auto* z = dynamic_cast<const ZArray*>(&sys.bank(b))) {
            walks += z->walkStats().walks;
            cand += z->walkStats().candidatesTotal;
            reloc += z->walkStats().relocationsTotal;
        }
    }
    if (walks > 0) {
        r.avgWalkCandidates =
            static_cast<double>(cand) / static_cast<double>(walks);
        r.avgRelocations =
            static_cast<double>(reloc) / static_cast<double>(walks);
    }

    // Energy.
    SystemEnergyParams ep;
    ep.numCores = cfg.numCores;
    ep.frequencyGhz = cfg.frequencyGhz;
    ep.l2Bank = sys.bankCosts();
    ep.l2Banks = cfg.l2Banks;
    SystemEnergyModel em(ep);
    EnergyEvents ev = sys.energyEvents();
    r.energy = em.energy(ev);
    r.totalJoules = r.energy.totalJ();
    r.bipsPerWatt = em.bipsPerWatt(ev);

    // Section VI-D bandwidth figures.
    double bank_cycles =
        static_cast<double>(r.cycles) * static_cast<double>(cfg.l2Banks);
    if (bank_cycles > 0) {
        r.loadPerBankCycle = static_cast<double>(st.l2Accesses) / bank_cycles;
        r.tagPerBankCycle =
            static_cast<double>(r.l2TagAccesses) / bank_cycles;
        r.missPerBankCycle =
            static_cast<double>(st.l2Misses) / bank_cycles;
    }
    r.epochs = sys.epochs();

    // Full stats tree: every component registers into one registry and
    // the dump becomes the run's machine-readable record.
    StatsRegistry reg;
    StatGroup& run = reg.root().group("run", "experiment parameters");
    run.addConst("workload", "workload name", JsonValue(params.workload));
    run.addConst("l2_design", "L2 organization label",
                 JsonValue(cfg.l2Spec.label()));
    run.addConst("policy", "replacement policy",
                 JsonValue(std::string(policyKindName(cfg.l2Spec.policy))));
    run.addConst("serial_lookup", "serial (vs parallel) L2 lookup",
                 JsonValue(params.serialLookup));
    run.addConst("warmup_instructions", "per-core warmup budget",
                 JsonValue(params.warmupInstr));
    run.addConst("measure_instructions", "per-core measurement budget",
                 JsonValue(params.measureInstr));
    run.addConst("seed", "experiment seed", JsonValue(params.seed));
    run.addConst("bank_latency_cycles", "CACTI-lite L2 bank hit latency",
                 JsonValue(sys.bankLatencyCycles()));

    StatGroup& summary = reg.root().group("summary", "headline metrics");
    summary.addConst("ipc", "aggregate IPC", JsonValue(r.ipc));
    summary.addConst("mpki", "L2 MPKI", JsonValue(r.mpki));
    summary.addConst("avg_walk_candidates", "mean R over walks",
                     JsonValue(r.avgWalkCandidates));
    summary.addConst("avg_relocations", "mean relocations per walk",
                     JsonValue(r.avgRelocations));
    summary.addConst("l2_tag_accesses", "tag ops, walks included",
                     JsonValue(r.l2TagAccesses));
    summary.addConst("load_per_bank_cycle", "Section VI-D demand load",
                     JsonValue(r.loadPerBankCycle));
    summary.addConst("tag_per_bank_cycle", "Section VI-D tag bandwidth",
                     JsonValue(r.tagPerBankCycle));
    summary.addConst("miss_per_bank_cycle", "Section VI-D miss bandwidth",
                     JsonValue(r.missPerBankCycle));

    sys.registerStats(reg.root().group("system", "CMP simulation state"));
    em.registerStats(reg.root().group("energy", "energy breakdown"), ev);
    r.stats = reg.toJson();
    return r;
}

} // namespace zc
