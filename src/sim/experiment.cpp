#include "sim/experiment.hpp"

#include <chrono>
#include <thread>

#include "common/bitops.hpp"
#include "common/fault_injection.hpp"
#include "common/log.hpp"
#include "common/status.hpp"
#include "common/watchdog.hpp"
#include "trace/future_use.hpp"
#include "trace/workloads.hpp"

namespace zc {

namespace {

/**
 * Build per-core generators. OPT runs pre-generate and annotate a trace
 * long enough to cover warmup + measurement (trace-driven mode, paper
 * Section VI-B); other policies stream directly from the generators.
 * With RunParams::tracePath, records come from the file instead: still
 * streamed for non-OPT (constant RSS), materialized only for OPT.
 */
std::vector<GeneratorPtr>
buildGenerators(const RunParams& p, const SystemConfig& cfg)
{
    std::vector<GeneratorPtr> gens;
    gens.reserve(cfg.numCores);

    bool opt = p.l2Spec.policy == PolicyKind::Opt;
    std::uint64_t instr_target = p.warmupInstr + p.measureInstr;

    if (!p.tracePath.empty()) {
        for (std::uint32_t c = 0; c < cfg.numCores; c++) {
            if (!opt) {
                gens.push_back(std::make_unique<StreamedTraceGenerator>(
                    p.tracePath));
                continue;
            }
            auto records = TraceIo::read(p.tracePath);
            throwIfError(records.status());
            std::vector<MemRecord> trace = std::move(*records);
            FutureUseAnnotator::annotate(trace);
            gens.push_back(
                std::make_unique<ReplayGenerator>(std::move(trace)));
        }
        return gens;
    }

    const WorkloadProfile& w = WorkloadRegistry::byName(p.workload);
    for (std::uint32_t c = 0; c < cfg.numCores; c++) {
        auto gen = WorkloadRegistry::makeCoreGenerator(w, c, cfg.numCores,
                                                       p.seed);
        if (!opt) {
            gens.push_back(std::move(gen));
            continue;
        }
        // Record until the instruction budget (plus slack for the
        // interleaving overshoot) is covered. OPT pre-generation can
        // dominate a run's wall clock, so it honours the job watchdog.
        std::vector<MemRecord> trace;
        trace.reserve(instr_target / 4);
        std::uint64_t instr = 0;
        while (instr < instr_target + 10000) {
            JobWatchdog::checkpoint();
            MemRecord r = gen->next();
            instr += r.instGap + 1;
            trace.push_back(r);
        }
        FutureUseAnnotator::annotate(trace);
        gens.push_back(std::make_unique<ReplayGenerator>(std::move(trace)));
    }
    return gens;
}

} // namespace

Status
RunParams::validate() const
{
    auto bad = [](const char* field, const std::string& msg) {
        return Status::invalidArgument(std::string("RunParams.") + field +
                                       ": " + msg);
    };

    if (workload.empty()) return bad("workload", "must not be empty");
    if (!WorkloadRegistry::find(workload)) {
        return Status::notFound(
            "RunParams.workload: unknown workload '" + workload +
            "' (the suite is listed in trace/workloads.cpp)");
    }
    if (measureInstr == 0) return bad("measureInstr", "must be > 0");
    if (base.numCores < 1 || base.numCores > 64) {
        return bad("base.numCores",
                   "(" + std::to_string(base.numCores) +
                   ") must be in [1, 64]");
    }
    if (base.l2Banks == 0 || !isPow2(base.l2Banks)) {
        return bad("base.l2Banks",
                   "(" + std::to_string(base.l2Banks) +
                   ") must be a power of two >= 1");
    }
    if (base.lineBytes == 0) return bad("base.lineBytes", "must be > 0");
    if (!(base.frequencyGhz > 0)) {
        return bad("base.frequencyGhz", "must be > 0");
    }

    // The system derives the per-bank block count from the L2 geometry
    // (SystemConfig::l2BankLines overrides l2Spec.blocks), so validate
    // the spec exactly as the bank constructors will see it.
    std::uint32_t bank_lines = base.l2BankLines();
    if (bank_lines == 0) {
        return bad("base.l2SizeBytes",
                   "(" + std::to_string(base.l2SizeBytes) +
                   ") yields zero lines per bank with lineBytes=" +
                   std::to_string(base.lineBytes) + ", l2Banks=" +
                   std::to_string(base.l2Banks));
    }
    ArraySpec derived = l2Spec;
    derived.blocks = bank_lines;
    if (Status s = validateSpec(derived); !s.isOk()) {
        return Status(s.code(),
                      "RunParams.l2Spec (blocks derived as " +
                          std::to_string(bank_lines) + " per bank): " +
                          s.message());
    }
    return Status::ok();
}

RunResult
runExperiment(const RunParams& params)
{
    throwIfError(params.validate());

    if (ZC_INJECT_FAULT("job.exception")) {
        throw StatusError(Status::internal(
            "fault injection: induced job exception at site "
            "'job.exception'"));
    }
    if (ZC_INJECT_FAULT("job.timeout")) {
        // Model a hung job: stall until the armed watchdog's deadline
        // passes, then surface the structured timeout. With no watchdog
        // armed the site degrades to an immediate timeout error.
        while (JobWatchdog::armed() && !JobWatchdog::expired()) {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        throw StatusError(Status::timeout(
            "fault injection: job stalled past its deadline at site "
            "'job.timeout'"));
    }

    SystemConfig cfg = params.base;
    cfg.l2Spec = params.l2Spec;
    cfg.l2SerialLookup = params.serialLookup;
    cfg.seed = params.seed ^ 0x5a5a;
    cfg.l2Spec.walkTraceCapacity = params.walkTraceCapacity;
    cfg.epochInstr = params.epochInstr
                         ? params.epochInstr
                         : cfg.numCores * params.measureInstr / 8;

    CmpSystem sys(cfg);
    sys.setGenerators(buildGenerators(params, cfg));

    if (params.warmupInstr > 0) {
        sys.run(params.warmupInstr);
        sys.resetStats();
    }
    sys.run(params.measureInstr);

    const SystemStats& st = sys.stats();

    RunResult r;
    r.instructions = st.totalInstructions();
    r.cycles = st.maxCycles();
    r.ipc = st.aggregateIpc();
    r.mpki = st.l2Mpki();
    r.l2Accesses = st.l2Accesses;
    r.l2Misses = st.l2Misses;
    r.bankLatencyCycles = sys.bankLatencyCycles();

    std::uint64_t walks = 0, cand = 0, reloc = 0;
    for (std::uint32_t b = 0; b < sys.numBanks(); b++) {
        const ArrayStats& as = sys.bank(b).stats();
        r.l2TagAccesses += as.tagReads + as.tagWrites;
        if (auto* z = dynamic_cast<const ZArray*>(&sys.bank(b))) {
            walks += z->walkStats().walks;
            cand += z->walkStats().candidatesTotal;
            reloc += z->walkStats().relocationsTotal;
        }
    }
    if (walks > 0) {
        r.avgWalkCandidates =
            static_cast<double>(cand) / static_cast<double>(walks);
        r.avgRelocations =
            static_cast<double>(reloc) / static_cast<double>(walks);
    }

    // Energy.
    SystemEnergyParams ep;
    ep.numCores = cfg.numCores;
    ep.frequencyGhz = cfg.frequencyGhz;
    ep.l2Bank = sys.bankCosts();
    ep.l2Banks = cfg.l2Banks;
    SystemEnergyModel em(ep);
    EnergyEvents ev = sys.energyEvents();
    r.energy = em.energy(ev);
    r.totalJoules = r.energy.totalJ();
    r.bipsPerWatt = em.bipsPerWatt(ev);

    // Section VI-D bandwidth figures.
    double bank_cycles =
        static_cast<double>(r.cycles) * static_cast<double>(cfg.l2Banks);
    if (bank_cycles > 0) {
        r.loadPerBankCycle = static_cast<double>(st.l2Accesses) / bank_cycles;
        r.tagPerBankCycle =
            static_cast<double>(r.l2TagAccesses) / bank_cycles;
        r.missPerBankCycle =
            static_cast<double>(st.l2Misses) / bank_cycles;
    }
    r.epochs = sys.epochs();

    // Full stats tree: every component registers into one registry and
    // the dump becomes the run's machine-readable record.
    StatsRegistry reg;
    StatGroup& run = reg.root().group("run", "experiment parameters");
    run.addConst("workload", "workload name", JsonValue(params.workload));
    run.addConst("l2_design", "L2 organization label",
                 JsonValue(cfg.l2Spec.label()));
    run.addConst("policy", "replacement policy",
                 JsonValue(std::string(policyKindName(cfg.l2Spec.policy))));
    run.addConst("serial_lookup", "serial (vs parallel) L2 lookup",
                 JsonValue(params.serialLookup));
    run.addConst("warmup_instructions", "per-core warmup budget",
                 JsonValue(params.warmupInstr));
    run.addConst("measure_instructions", "per-core measurement budget",
                 JsonValue(params.measureInstr));
    run.addConst("seed", "experiment seed", JsonValue(params.seed));
    run.addConst("bank_latency_cycles", "CACTI-lite L2 bank hit latency",
                 JsonValue(sys.bankLatencyCycles()));

    StatGroup& summary = reg.root().group("summary", "headline metrics");
    summary.addConst("ipc", "aggregate IPC", JsonValue(r.ipc));
    summary.addConst("mpki", "L2 MPKI", JsonValue(r.mpki));
    summary.addConst("avg_walk_candidates", "mean R over walks",
                     JsonValue(r.avgWalkCandidates));
    summary.addConst("avg_relocations", "mean relocations per walk",
                     JsonValue(r.avgRelocations));
    summary.addConst("l2_tag_accesses", "tag ops, walks included",
                     JsonValue(r.l2TagAccesses));
    summary.addConst("load_per_bank_cycle", "Section VI-D demand load",
                     JsonValue(r.loadPerBankCycle));
    summary.addConst("tag_per_bank_cycle", "Section VI-D tag bandwidth",
                     JsonValue(r.tagPerBankCycle));
    summary.addConst("miss_per_bank_cycle", "Section VI-D miss bandwidth",
                     JsonValue(r.missPerBankCycle));

    sys.registerStats(reg.root().group("system", "CMP simulation state"));
    em.registerStats(reg.root().group("energy", "energy breakdown"), ev);
    r.stats = reg.toJson();
    return r;
}

JsonValue
runResultToJson(const RunResult& r)
{
    JsonValue o = JsonValue::object();
    o.set("ipc", JsonValue(r.ipc));
    o.set("mpki", JsonValue(r.mpki));
    o.set("bips_per_watt", JsonValue(r.bipsPerWatt));
    o.set("total_joules", JsonValue(r.totalJoules));
    o.set("instructions", JsonValue(r.instructions));
    o.set("cycles", JsonValue(r.cycles));
    o.set("l2_accesses", JsonValue(r.l2Accesses));
    o.set("l2_misses", JsonValue(r.l2Misses));
    o.set("l2_tag_accesses", JsonValue(r.l2TagAccesses));
    o.set("avg_walk_candidates", JsonValue(r.avgWalkCandidates));
    o.set("avg_relocations", JsonValue(r.avgRelocations));
    o.set("bank_latency_cycles", JsonValue(r.bankLatencyCycles));

    JsonValue e = JsonValue::object();
    e.set("core_j", JsonValue(r.energy.coreJ));
    e.set("l1_j", JsonValue(r.energy.l1J));
    e.set("l2_j", JsonValue(r.energy.l2J));
    e.set("noc_j", JsonValue(r.energy.nocJ));
    e.set("dram_j", JsonValue(r.energy.dramJ));
    e.set("static_j", JsonValue(r.energy.staticJ));
    o.set("energy", std::move(e));

    o.set("load_per_bank_cycle", JsonValue(r.loadPerBankCycle));
    o.set("tag_per_bank_cycle", JsonValue(r.tagPerBankCycle));
    o.set("miss_per_bank_cycle", JsonValue(r.missPerBankCycle));

    JsonValue epochs = JsonValue::array();
    for (const EpochSample& s : r.epochs) {
        JsonValue ep = JsonValue::object();
        ep.set("instructions", JsonValue(s.instructions));
        ep.set("cycles", JsonValue(s.cycles));
        ep.set("l2_accesses", JsonValue(s.l2Accesses));
        ep.set("l2_misses", JsonValue(s.l2Misses));
        ep.set("tag_accesses", JsonValue(s.tagAccesses));
        ep.set("walks", JsonValue(s.walks));
        ep.set("relocations", JsonValue(s.relocations));
        epochs.push(std::move(ep));
    }
    o.set("epochs", std::move(epochs));
    o.set("stats", r.stats);
    return o;
}

namespace {

Status
missingField(const char* key)
{
    return Status::corruption(
        std::string("run result record: missing or mistyped field '") +
        key + "'");
}

Expected<double>
getF64(const JsonValue& o, const char* key)
{
    const JsonValue* v = o.find(key);
    if (!v || !v->isNumber()) return missingField(key);
    return v->asDouble();
}

Expected<std::uint64_t>
getU64(const JsonValue& o, const char* key)
{
    const JsonValue* v = o.find(key);
    if (!v || v->kind() != JsonValue::Kind::U64) return missingField(key);
    return v->asU64();
}

} // namespace

Expected<RunResult>
runResultFromJson(const JsonValue& v)
{
    if (!v.isObject()) {
        return Status::corruption("run result record: not a JSON object");
    }
    RunResult r;
    // Each helper call short-circuits with the precise field name.
    auto f64 = [&](const char* key, double& out) -> Status {
        auto e = getF64(v, key);
        if (!e) return e.status();
        out = *e;
        return Status::ok();
    };
    auto u64 = [&](const char* key, std::uint64_t& out) -> Status {
        auto e = getU64(v, key);
        if (!e) return e.status();
        out = *e;
        return Status::ok();
    };

    if (Status s = f64("ipc", r.ipc); !s.isOk()) return s;
    if (Status s = f64("mpki", r.mpki); !s.isOk()) return s;
    if (Status s = f64("bips_per_watt", r.bipsPerWatt); !s.isOk()) return s;
    if (Status s = f64("total_joules", r.totalJoules); !s.isOk()) return s;
    if (Status s = u64("instructions", r.instructions); !s.isOk()) return s;
    if (Status s = u64("cycles", r.cycles); !s.isOk()) return s;
    if (Status s = u64("l2_accesses", r.l2Accesses); !s.isOk()) return s;
    if (Status s = u64("l2_misses", r.l2Misses); !s.isOk()) return s;
    if (Status s = u64("l2_tag_accesses", r.l2TagAccesses); !s.isOk()) {
        return s;
    }
    if (Status s = f64("avg_walk_candidates", r.avgWalkCandidates);
        !s.isOk()) {
        return s;
    }
    if (Status s = f64("avg_relocations", r.avgRelocations); !s.isOk()) {
        return s;
    }
    std::uint64_t bank_latency = 0;
    if (Status s = u64("bank_latency_cycles", bank_latency); !s.isOk()) {
        return s;
    }
    r.bankLatencyCycles = static_cast<std::uint32_t>(bank_latency);

    const JsonValue* e = v.find("energy");
    if (!e || !e->isObject()) return missingField("energy");
    auto ef64 = [&](const char* key, double& out) -> Status {
        auto x = getF64(*e, key);
        if (!x) return x.status();
        out = *x;
        return Status::ok();
    };
    if (Status s = ef64("core_j", r.energy.coreJ); !s.isOk()) return s;
    if (Status s = ef64("l1_j", r.energy.l1J); !s.isOk()) return s;
    if (Status s = ef64("l2_j", r.energy.l2J); !s.isOk()) return s;
    if (Status s = ef64("noc_j", r.energy.nocJ); !s.isOk()) return s;
    if (Status s = ef64("dram_j", r.energy.dramJ); !s.isOk()) return s;
    if (Status s = ef64("static_j", r.energy.staticJ); !s.isOk()) return s;

    if (Status s = f64("load_per_bank_cycle", r.loadPerBankCycle);
        !s.isOk()) {
        return s;
    }
    if (Status s = f64("tag_per_bank_cycle", r.tagPerBankCycle); !s.isOk()) {
        return s;
    }
    if (Status s = f64("miss_per_bank_cycle", r.missPerBankCycle);
        !s.isOk()) {
        return s;
    }

    const JsonValue* epochs = v.find("epochs");
    if (!epochs || !epochs->isArray()) return missingField("epochs");
    r.epochs.reserve(epochs->arr().size());
    for (const JsonValue& ej : epochs->arr()) {
        EpochSample s;
        auto epu64 = [&](const char* key, std::uint64_t& out) -> Status {
            auto x = getU64(ej, key);
            if (!x) return x.status();
            out = *x;
            return Status::ok();
        };
        if (Status st = epu64("instructions", s.instructions); !st.isOk()) {
            return st;
        }
        if (Status st = epu64("cycles", s.cycles); !st.isOk()) return st;
        if (Status st = epu64("l2_accesses", s.l2Accesses); !st.isOk()) {
            return st;
        }
        if (Status st = epu64("l2_misses", s.l2Misses); !st.isOk()) {
            return st;
        }
        if (Status st = epu64("tag_accesses", s.tagAccesses); !st.isOk()) {
            return st;
        }
        if (Status st = epu64("walks", s.walks); !st.isOk()) return st;
        if (Status st = epu64("relocations", s.relocations); !st.isOk()) {
            return st;
        }
        r.epochs.push_back(s);
    }

    const JsonValue* stats = v.find("stats");
    if (!stats) return missingField("stats");
    r.stats = *stats;
    return r;
}

} // namespace zc
