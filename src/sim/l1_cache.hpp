/**
 * @file
 * First-level cache model (Table I: 32 KB, 4-way set-associative, split
 * D/I, 1-cycle latency).
 *
 * Hand-rolled rather than built on CacheArray: L1 lookups are the
 * simulator's hottest path, and L1 organization is not under study — the
 * paper holds it fixed. Supports the coherence interactions the shared
 * L2 needs: per-line Shared/Exclusive state, dirty bits, invalidation
 * and write-back extraction.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "common/bitops.hpp"
#include "common/log.hpp"
#include "common/stats_registry.hpp"
#include "common/types.hpp"

namespace zc {

class L1Cache
{
  public:
    enum class LineState : std::uint8_t {
        Invalid,
        Shared,    ///< clean, possibly replicated in other L1s
        Exclusive, ///< sole owner; writable (M/E collapsed)
    };

    struct Victim
    {
        Addr addr = kInvalidAddr;
        bool dirty = false;
        bool valid() const { return addr != kInvalidAddr; }
    };

    L1Cache(std::uint32_t capacity_bytes, std::uint32_t ways,
            std::uint32_t line_bytes)
        : ways_(ways),
          sets_(capacity_bytes / line_bytes / ways),
          tags_(static_cast<std::size_t>(sets_) * ways, kInvalidAddr),
          state_(static_cast<std::size_t>(sets_) * ways,
                 LineState::Invalid),
          dirty_(static_cast<std::size_t>(sets_) * ways, 0),
          lru_(static_cast<std::size_t>(sets_) * ways, 0)
    {
        zc_assert(ways >= 1);
        zc_assert(sets_ >= 1 && isPow2(sets_));
    }

    /**
     * Look up @p lineAddr. On a hit updates LRU and (for stores on an
     * Exclusive line) the dirty bit. Returns the line state *before*
     * the access: Invalid means miss; a store hitting a Shared line
     * needs a directory upgrade (caller's job, then markExclusive()).
     */
    LineState
    access(Addr lineAddr, bool store)
    {
        std::size_t base = setBase(lineAddr);
        for (std::uint32_t w = 0; w < ways_; w++) {
            std::size_t i = base + w;
            if (tags_[i] == lineAddr && state_[i] != LineState::Invalid) {
                lru_[i] = ++clock_;
                LineState prior = state_[i];
                if (store && prior == LineState::Exclusive) dirty_[i] = 1;
                return prior;
            }
        }
        return LineState::Invalid;
    }

    /**
     * Fill @p lineAddr in @p state (the directory decides Shared vs
     * Exclusive). Returns the victim line, which the caller must write
     * back if dirty.
     */
    Victim
    insert(Addr lineAddr, LineState state, bool store)
    {
        zc_assert(state != LineState::Invalid);
        std::size_t base = setBase(lineAddr);
        std::size_t victim = base;
        for (std::uint32_t w = 0; w < ways_; w++) {
            std::size_t i = base + w;
            if (state_[i] == LineState::Invalid) {
                victim = i;
                break;
            }
            if (lru_[i] < lru_[victim]) victim = i;
        }

        Victim out;
        if (state_[victim] != LineState::Invalid) {
            out.addr = tags_[victim];
            out.dirty = dirty_[victim] != 0;
        }
        tags_[victim] = lineAddr;
        state_[victim] = state;
        dirty_[victim] = (store && state == LineState::Exclusive) ? 1 : 0;
        lru_[victim] = ++clock_;
        return out;
    }

    /**
     * Invalidate @p lineAddr (directory request / inclusive back-
     * invalidation). Returns whether the line was present and dirty —
     * a dirty result means its data must be folded back into the L2.
     */
    struct InvalResult
    {
        bool present = false;
        bool dirty = false;
    };

    InvalResult
    invalidate(Addr lineAddr)
    {
        std::size_t base = setBase(lineAddr);
        for (std::uint32_t w = 0; w < ways_; w++) {
            std::size_t i = base + w;
            if (tags_[i] == lineAddr && state_[i] != LineState::Invalid) {
                InvalResult r{true, dirty_[i] != 0};
                state_[i] = LineState::Invalid;
                dirty_[i] = 0;
                return r;
            }
        }
        return {};
    }

    /** Downgrade Exclusive -> Shared; returns whether data was dirty. */
    bool
    downgrade(Addr lineAddr)
    {
        std::size_t base = setBase(lineAddr);
        for (std::uint32_t w = 0; w < ways_; w++) {
            std::size_t i = base + w;
            if (tags_[i] == lineAddr && state_[i] != LineState::Invalid) {
                bool was_dirty = dirty_[i] != 0;
                state_[i] = LineState::Shared;
                dirty_[i] = 0;
                return was_dirty;
            }
        }
        return false;
    }

    /** Promote a resident line to Exclusive (after a directory upgrade). */
    void
    markExclusive(Addr lineAddr, bool store)
    {
        std::size_t base = setBase(lineAddr);
        for (std::uint32_t w = 0; w < ways_; w++) {
            std::size_t i = base + w;
            if (tags_[i] == lineAddr && state_[i] != LineState::Invalid) {
                state_[i] = LineState::Exclusive;
                if (store) dirty_[i] = 1;
                return;
            }
        }
        zc_panic("markExclusive on non-resident line");
    }

    std::uint32_t sets() const { return sets_; }
    std::uint32_t ways() const { return ways_; }

    std::uint32_t
    validLines() const
    {
        std::uint32_t n = 0;
        for (LineState s : state_) {
            if (s != LineState::Invalid) n++;
        }
        return n;
    }

    std::uint32_t
    dirtyLines() const
    {
        std::uint32_t n = 0;
        for (std::uint8_t d : dirty_) n += d;
        return n;
    }

    /**
     * Register geometry and occupancy. Hit/miss counts live with the
     * per-core stats (CmpSystem) — the L1 model itself stays counter-
     * free on its hot path.
     */
    void
    registerStats(StatGroup& g)
    {
        g.addConst("sets", "number of sets", JsonValue(sets_));
        g.addConst("ways", "set associativity", JsonValue(ways_));
        g.addCounter("valid_lines", "currently valid lines",
                     [this] { return std::uint64_t{validLines()}; });
        g.addCounter("dirty_lines", "currently dirty lines",
                     [this] { return std::uint64_t{dirtyLines()}; });
    }

  private:
    std::size_t
    setBase(Addr lineAddr) const
    {
        return static_cast<std::size_t>(lineAddr & (sets_ - 1)) * ways_;
    }

    std::uint32_t ways_;
    std::uint32_t sets_;
    std::uint64_t clock_ = 0;
    std::vector<Addr> tags_;
    std::vector<LineState> state_;
    std::vector<std::uint8_t> dirty_;
    std::vector<std::uint64_t> lru_;
};

} // namespace zc
