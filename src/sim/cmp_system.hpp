/**
 * @file
 * Trace-driven 32-core CMP simulator (paper Section V, Table I).
 *
 * Cores are in-order, IPC = 1 except on memory accesses, each driven by
 * an AccessGenerator. The memory hierarchy is a split 4-way L1 per core
 * and a shared, inclusive, banked L2 whose array organization — the
 * object under study — is pluggable via ArraySpec (set-associative with
 * or without hashing, skew-associative, zcache of any W/R). A simplified
 * MESI directory embedded in the L2 keeps L1s coherent: stores obtain
 * exclusivity by invalidating sharers, read misses downgrade exclusive
 * owners, inclusive L2 evictions back-invalidate.
 *
 * The simulator charges latencies per Table I and counts every tag/data
 * array event (through ArrayStats, so zcache walks and relocations are
 * included) for the bandwidth (Section VI-D) and energy (Fig. 5)
 * analyses. Replacement walks happen off the critical path and add no
 * latency to the triggering miss — the zcache property of Section III.
 */

#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "cache/array_factory.hpp"
#include "cache/cache_array.hpp"
#include "common/rng.hpp"
#include "energy/cacti_lite.hpp"
#include "energy/system_energy.hpp"
#include "sim/config.hpp"
#include "sim/l1_cache.hpp"
#include "trace/generator.hpp"

namespace zc {

/**
 * One epoch-sampler snapshot (SystemConfig::epochInstr). Counter fields
 * are *interval* values — deltas since the previous sample — so the
 * series directly plots phase behaviour; `instructions` and `cycles`
 * are cumulative and strictly monotone across the series.
 */
struct EpochSample
{
    std::uint64_t instructions = 0; ///< cumulative, across cores
    std::uint64_t cycles = 0;       ///< cumulative max core cycles
    std::uint64_t l2Accesses = 0;   ///< interval
    std::uint64_t l2Misses = 0;     ///< interval
    std::uint64_t tagAccesses = 0;  ///< interval, walks included
    std::uint64_t walks = 0;        ///< interval zcache replacements
    std::uint64_t relocations = 0;  ///< interval zcache relocations

    double
    missRate() const
    {
        return l2Accesses ? static_cast<double>(l2Misses) /
                                static_cast<double>(l2Accesses)
                          : 0.0;
    }

    double
    avgWalkCandidates() const
    {
        return walks ? static_cast<double>(candidatesTotal) /
                           static_cast<double>(walks)
                     : 0.0;
    }

    std::uint64_t candidatesTotal = 0; ///< interval walk candidates
};

struct CoreStats
{
    std::uint64_t instructions = 0;
    std::uint64_t cycles = 0;
    std::uint64_t l1dAccesses = 0;
    std::uint64_t l1dMisses = 0;
    std::uint64_t l1iAccesses = 0;
    std::uint64_t l1iMisses = 0;

    double
    ipc() const
    {
        return cycles ? static_cast<double>(instructions) /
                            static_cast<double>(cycles)
                      : 0.0;
    }
};

struct SystemStats
{
    std::vector<CoreStats> cores;

    std::uint64_t l2Accesses = 0;
    std::uint64_t l2Hits = 0;
    std::uint64_t l2Misses = 0;
    std::uint64_t l2Evictions = 0;
    std::uint64_t l2Writebacks = 0; ///< dirty L2 evictions to DRAM
    std::uint64_t l1Writebacks = 0; ///< dirty L1 evictions into L2
    std::uint64_t dramAccesses = 0;
    std::uint64_t invalidations = 0;
    std::uint64_t upgrades = 0;
    std::uint64_t downgrades = 0;
    std::uint64_t throttledWalks = 0; ///< walks capped below nominal R

    std::uint64_t
    totalInstructions() const
    {
        std::uint64_t n = 0;
        for (const auto& c : cores) n += c.instructions;
        return n;
    }

    std::uint64_t
    maxCycles() const
    {
        std::uint64_t m = 0;
        for (const auto& c : cores) m = std::max(m, c.cycles);
        return m;
    }

    /** Throughput IPC: sum of per-core IPCs (standard for rate/mix). */
    double
    aggregateIpc() const
    {
        double s = 0.0;
        for (const auto& c : cores) s += c.ipc();
        return s;
    }

    /** L2 misses per thousand instructions. */
    double
    l2Mpki() const
    {
        std::uint64_t instr = totalInstructions();
        return instr ? 1000.0 * static_cast<double>(l2Misses) /
                           static_cast<double>(instr)
                     : 0.0;
    }
};

class CmpSystem
{
  public:
    explicit CmpSystem(const SystemConfig& cfg);

    /** Install per-core generators; must be numCores of them. */
    void setGenerators(std::vector<GeneratorPtr> gens);

    /** Run every core for @p instr_per_core further instructions. */
    void run(std::uint64_t instr_per_core);

    /** Clear statistics (end of warmup); cache contents persist. */
    void resetStats();

    const SystemStats& stats() const { return stats_; }
    const SystemConfig& config() const { return cfg_; }

    /** The L2 bank arrays (instrumentation, assoc tracking). */
    CacheArray& bank(std::uint32_t i) { return *banks_.at(i); }
    std::uint32_t numBanks() const
    {
        return static_cast<std::uint32_t>(banks_.size());
    }

    /** L2 bank hit latency in cycles (from CACTI-lite). */
    std::uint32_t bankLatencyCycles() const { return bankLatency_; }

    /** Bank cost model for the configured L2 organization. */
    const BankCosts& bankCosts() const { return bankCosts_; }

    /** Aggregate event counts for the system energy model. */
    EnergyEvents energyEvents() const;

    /** Epoch time series collected since the last resetStats(). */
    const std::vector<EpochSample>& epochs() const { return epochs_; }

    /**
     * Register the full system stats tree under @p g: per-core counters
     * and IPC, per-bank array stats (walk stats and trace included),
     * L2/coherence aggregates, and the epoch time series. Call once per
     * system per group; the system must outlive the group.
     */
    void registerStats(StatGroup& g);

  private:
    struct DirEntry
    {
        std::uint64_t sharers = 0;
        bool exclusive = false;
        bool l2Dirty = false;
    };

    struct CoreState
    {
        GeneratorPtr gen;
        std::uint32_t codeLine = 0;
        std::uint32_t instrIntoLine = 0;
        Addr codeBase = 0;
    };

    std::uint32_t bankOf(Addr lineAddr) const;
    Addr bankLocal(Addr lineAddr) const;
    Addr bankGlobal(Addr local, std::uint32_t bank) const;

    /** Data access; returns stall cycles beyond the 1-cycle issue. */
    std::uint32_t dataAccess(std::uint32_t core, Addr lineAddr, bool store,
                             std::uint64_t next_use);

    /** L2 access shared by data and instruction paths. */
    std::uint32_t l2Access(std::uint32_t core, Addr lineAddr, bool store,
                           std::uint64_t next_use, bool& fill_exclusive);

    /** Instruction-fetch modeling for @p n instructions on @p core. */
    std::uint32_t fetchInstructions(std::uint32_t core, std::uint64_t n);

    void invalidateSharers(DirEntry& e, std::uint32_t except, Addr lineAddr);
    void handleL2Eviction(Addr lineAddr);
    void handleL1Victim(std::uint32_t core, const L1Cache::Victim& v);
    void stepCore(std::uint32_t core);
    void takeEpochSample();
    void rebaseEpochs();

    SystemConfig cfg_;
    std::uint32_t bankShift_;
    std::uint32_t bankLatency_;
    BankCosts bankCosts_;

    std::vector<CoreState> coreState_;
    std::vector<L1Cache> l1d_;
    std::vector<L1Cache> l1i_;
    std::vector<std::unique_ptr<CacheArray>> banks_;
    std::unordered_map<Addr, DirEntry> directory_;
    Pcg32 rng_;

    // Walk-throttle token buckets (one tag op per idle bank cycle).
    std::uint32_t nominalCandidates_ = 0;
    Cycle globalNow_ = 0;
    std::vector<double> bankTokens_;
    std::vector<Cycle> bankTokenStamp_;

    // Epoch sampler: cumulative baseline of the previous sample.
    struct EpochBaseline
    {
        std::uint64_t l2Accesses = 0;
        std::uint64_t l2Misses = 0;
        std::uint64_t tagAccesses = 0;
        std::uint64_t walks = 0;
        std::uint64_t candidates = 0;
        std::uint64_t relocations = 0;
    };
    EpochBaseline epochBase_;
    std::vector<EpochSample> epochs_;
    std::uint64_t instrSinceEpoch_ = 0;
    std::vector<ZArray*> zbanks_; ///< non-null entries only (walk stats)

    SystemStats stats_;
};

} // namespace zc
