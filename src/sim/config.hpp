/**
 * @file
 * Simulated CMP configuration — Table I of the paper.
 *
 * 32 in-order x86-like cores (IPC = 1 except on memory accesses) at
 * 2 GHz; 32 KB 4-way split L1s with 1-cycle latency; an 8 MB shared
 * inclusive NUCA L2 in 8 banks with MESI directory coherence, 4-cycle
 * average L1-to-bank network latency and 6-11 cycle bank latency
 * (produced by CACTI-lite from the bank organization under test); 4
 * memory controllers at 200 cycles zero-load latency.
 */

#pragma once

#include <cstdint>

#include "cache/array_factory.hpp"

namespace zc {

struct SystemConfig
{
    std::uint32_t numCores = 32;
    double frequencyGhz = 2.0;
    std::uint32_t lineBytes = 64;

    // L1 (fixed across the evaluation).
    std::uint32_t l1SizeBytes = 32 * 1024;
    std::uint32_t l1Ways = 4;
    std::uint32_t l1LatencyCycles = 1;

    // L2 — the organization under study.
    std::uint64_t l2SizeBytes = std::uint64_t{8} << 20;
    std::uint32_t l2Banks = 8;
    bool l2SerialLookup = true;
    ArraySpec l2Spec; ///< kind/ways/levels/policy/hash; blocks derived

    std::uint32_t l1ToL2Cycles = 4; ///< average network latency, one way

    /** Extra cycles for a Shared->Exclusive directory upgrade. */
    std::uint32_t upgradeCycles = 8;

    // Memory.
    std::uint32_t memControllers = 4;
    std::uint32_t memLatencyCycles = 200;

    // Instruction-fetch model: per-core code footprint and jump rate.
    // The hot code region fits the L1I (instruction fetch is not under
    // study; Table I workloads have negligible I-miss rates). A cyclic
    // footprint above the L1I size would thrash it pathologically
    // (sequential reuse is LRU's worst case), which no real frontend
    // exhibits.
    std::uint32_t codeLines = 256;        ///< 16 KB hot code per core
    double codeJumpProb = 0.02;           ///< irregular control flow
    std::uint32_t instrPerCodeLine = 16;  ///< 4-byte x86-ish instructions

    /**
     * Next-use distance (in trace records) attributed to instruction
     * lines under OPT. Code is cyclically hot; without a finite value
     * an OPT LLC would rank code lines dead and inclusion would thrash
     * the L1I.
     */
    std::uint64_t codeNextUseDistance = 64;

    /**
     * Walk-bandwidth throttling (Section III: "should bandwidth or
     * energy become an issue, the replacement process can be stopped
     * early, simply resulting in a worse replacement candidate").
     * When enabled, each bank accrues one tag-operation token per idle
     * cycle (capped at walkTokenWindow); a walk may only expand as far
     * as the bank's banked tokens allow.
     */
    bool walkThrottle = false;
    std::uint32_t walkTokenWindow = 16;

    /**
     * Epoch sampler: snapshot key counters (miss rate, walk candidates,
     * relocations, tag bandwidth, IPC) every this many *total*
     * instructions across all cores, building a time series that
     * exposes phase behaviour the end-of-run aggregates hide. 0 = off.
     */
    std::uint64_t epochInstr = 0;

    std::uint64_t seed = 0x2cafe;

    std::uint32_t
    l2BankLines() const
    {
        return static_cast<std::uint32_t>(l2SizeBytes / lineBytes /
                                          l2Banks);
    }
};

} // namespace zc
