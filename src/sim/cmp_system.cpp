#include "sim/cmp_system.hpp"

#include "common/bitops.hpp"
#include "common/log.hpp"
#include "common/watchdog.hpp"

namespace zc {

CmpSystem::CmpSystem(const SystemConfig& cfg)
    : cfg_(cfg), rng_(cfg.seed, /*stream=*/0x14057b7ef767814fULL)
{
    zc_assert(cfg.numCores >= 1 && cfg.numCores <= 64);
    zc_assert(isPow2(cfg.l2Banks));
    bankShift_ = log2Floor(cfg.l2Banks);

    // L2 bank cost model: the organization under test determines the
    // bank hit latency the cores observe (the Fig. 4/5 mechanism).
    BankGeometry geom;
    geom.capacityBytes = cfg.l2SizeBytes / cfg.l2Banks;
    geom.lineBytes = cfg.lineBytes;
    geom.ways = cfg.l2Spec.ways;
    geom.serialLookup = cfg.l2SerialLookup;
    geom.frequencyGhz = cfg.frequencyGhz;
    bankCosts_ = CactiLite::model(geom);
    bankLatency_ = bankCosts_.hitLatencyCycles;

    // Build the banks.
    ArraySpec spec = cfg.l2Spec;
    spec.blocks = cfg.l2BankLines();
    for (std::uint32_t b = 0; b < cfg.l2Banks; b++) {
        spec.seed = cfg.seed + 0x100 * (b + 1);
        banks_.push_back(makeArray(spec));
        if (auto* z = dynamic_cast<ZArray*>(banks_.back().get())) {
            zbanks_.push_back(z);
        }
    }

    if (cfg.walkThrottle) {
        nominalCandidates_ = cfg.l2Spec.kind == ArrayKind::ZCache
                                 ? ZArray::nominalCandidates(
                                       cfg.l2Spec.ways, cfg.l2Spec.levels)
                                 : 0;
        bankTokens_.assign(cfg.l2Banks, cfg.walkTokenWindow);
        bankTokenStamp_.assign(cfg.l2Banks, 0);
    }

    // Cores and L1s.
    stats_.cores.resize(cfg.numCores);
    coreState_.resize(cfg.numCores);
    for (std::uint32_t c = 0; c < cfg.numCores; c++) {
        l1d_.emplace_back(cfg.l1SizeBytes, cfg.l1Ways, cfg.lineBytes);
        l1i_.emplace_back(cfg.l1SizeBytes, cfg.l1Ways, cfg.lineBytes);
        coreState_[c].codeBase =
            (Addr{1} << 52) + (Addr{c} << 24); // private code region
    }
    directory_.reserve(cfg.l2SizeBytes / cfg.lineBytes);
}

void
CmpSystem::setGenerators(std::vector<GeneratorPtr> gens)
{
    zc_assert(gens.size() == cfg_.numCores);
    for (std::uint32_t c = 0; c < cfg_.numCores; c++) {
        coreState_[c].gen = std::move(gens[c]);
    }
}

std::uint32_t
CmpSystem::bankOf(Addr lineAddr) const
{
    return static_cast<std::uint32_t>(lineAddr & (cfg_.l2Banks - 1));
}

Addr
CmpSystem::bankLocal(Addr lineAddr) const
{
    return lineAddr >> bankShift_;
}

Addr
CmpSystem::bankGlobal(Addr local, std::uint32_t bank) const
{
    return (local << bankShift_) | bank;
}

void
CmpSystem::invalidateSharers(DirEntry& e, std::uint32_t except,
                             Addr lineAddr)
{
    std::uint64_t sharers = e.sharers;
    while (sharers != 0) {
        auto c = static_cast<std::uint32_t>(std::countr_zero(sharers));
        sharers &= sharers - 1;
        if (c == except) continue;
        auto r = l1d_[c].invalidate(lineAddr);
        if (!r.present) l1i_[c].invalidate(lineAddr);
        if (r.dirty) e.l2Dirty = true;
        stats_.invalidations++;
    }
    e.sharers &= (except < 64) ? (std::uint64_t{1} << except) : 0;
    e.exclusive = false;
}

void
CmpSystem::handleL2Eviction(Addr lineAddr)
{
    stats_.l2Evictions++;
    auto it = directory_.find(lineAddr);
    if (it == directory_.end()) return;
    // Inclusive L2: back-invalidate every L1 copy; fold dirty data.
    invalidateSharers(it->second, /*except=*/~0u, lineAddr);
    if (it->second.l2Dirty) {
        stats_.l2Writebacks++;
        stats_.dramAccesses++;
    }
    directory_.erase(it);
}

void
CmpSystem::handleL1Victim(std::uint32_t core, const L1Cache::Victim& v)
{
    if (!v.valid()) return;
    auto it = directory_.find(v.addr);
    if (it == directory_.end()) {
        // The line was already evicted from the inclusive L2 (and this
        // L1 copy back-invalidated); a victim entry can still surface if
        // the back-invalidation raced the eviction in a real machine.
        // In this model it means the line is simply gone.
        return;
    }
    it->second.sharers &= ~(std::uint64_t{1} << core);
    if (v.dirty) {
        it->second.l2Dirty = true;
        stats_.l1Writebacks++;
    }
}

std::uint32_t
CmpSystem::l2Access(std::uint32_t core, Addr lineAddr, bool store,
                    std::uint64_t next_use, bool& fill_exclusive)
{
    std::uint32_t bank = bankOf(lineAddr);
    Addr local = bankLocal(lineAddr);
    std::uint32_t lat = cfg_.l1ToL2Cycles + bankLatency_;
    stats_.l2Accesses++;

    AccessContext ctx;
    ctx.lineAddr = local;
    ctx.nextUse = next_use;

    BlockPos pos = banks_[bank]->access(local, ctx);
    if (pos != kInvalidPos) {
        stats_.l2Hits++;
    } else {
        stats_.l2Misses++;
        stats_.dramAccesses++;
        lat += cfg_.memLatencyCycles;
        // The replacement walk runs off the critical path while DRAM
        // serves the fill (Section III): no latency is added here —
        // but under walk throttling it may only expand as far as the
        // bank's spare tag bandwidth allows.
        auto* z = cfg_.walkThrottle && nominalCandidates_ > 0
                      ? dynamic_cast<ZArray*>(banks_[bank].get())
                      : nullptr;
        if (z != nullptr) {
            // Refill the bank's token bucket with its idle cycles (one
            // tag operation per cycle; each operation reads one index
            // in every way, i.e. W candidates). Cores advance on
            // slightly different clocks; the bucket uses a monotonic
            // global proxy so refills never stall behind a slow core.
            globalNow_ = std::max(globalNow_, stats_.cores[core].cycles);
            Cycle now = globalNow_;
            if (now > bankTokenStamp_[bank]) {
                bankTokens_[bank] = std::min<double>(
                    cfg_.walkTokenWindow,
                    bankTokens_[bank] +
                        static_cast<double>(now - bankTokenStamp_[bank]));
                bankTokenStamp_[bank] = now;
            }
            std::uint32_t ways = cfg_.l2Spec.ways;
            auto allowed = static_cast<std::uint32_t>(
                bankTokens_[bank] * ways);
            std::uint32_t cap =
                std::max(ways, std::min(nominalCandidates_, allowed));
            if (cap < nominalCandidates_) stats_.throttledWalks++;
            z->setMaxCandidates(cap);
        }
        Replacement r = banks_[bank]->insert(local, ctx);
        if (z != nullptr) {
            bankTokens_[bank] = std::max(
                0.0, bankTokens_[bank] -
                         static_cast<double>(r.candidates) /
                             cfg_.l2Spec.ways);
        }
        if (r.evictedValid()) {
            handleL2Eviction(bankGlobal(r.evictedAddr, bank));
        }
    }

    DirEntry& e = directory_[lineAddr];
    if (store) {
        if (!e.sharers ||
            e.sharers != (std::uint64_t{1} << core)) {
            invalidateSharers(e, core, lineAddr);
        }
        e.sharers = std::uint64_t{1} << core;
        e.exclusive = true;
        e.l2Dirty = true;
        fill_exclusive = true;
    } else {
        if (e.exclusive && e.sharers != (std::uint64_t{1} << core)) {
            // Downgrade the current exclusive owner.
            std::uint64_t owners = e.sharers;
            while (owners != 0) {
                auto o = static_cast<std::uint32_t>(
                    std::countr_zero(owners));
                owners &= owners - 1;
                if (o == core) continue;
                if (l1d_[o].downgrade(lineAddr)) e.l2Dirty = true;
                stats_.downgrades++;
            }
            e.exclusive = false;
        }
        e.sharers |= std::uint64_t{1} << core;
        if (e.sharers == (std::uint64_t{1} << core)) {
            e.exclusive = true; // sole sharer: grant E
            fill_exclusive = true;
        } else {
            fill_exclusive = false;
        }
    }
    return lat;
}

std::uint32_t
CmpSystem::dataAccess(std::uint32_t core, Addr lineAddr, bool store,
                      std::uint64_t next_use)
{
    CoreStats& cs = stats_.cores[core];
    cs.l1dAccesses++;

    L1Cache::LineState st = l1d_[core].access(lineAddr, store);
    if (st == L1Cache::LineState::Exclusive) return 0;
    if (st == L1Cache::LineState::Shared) {
        if (!store) return 0;
        // Upgrade: obtain exclusivity through the directory.
        auto it = directory_.find(lineAddr);
        zc_assert(it != directory_.end()); // inclusion invariant
        invalidateSharers(it->second, core, lineAddr);
        it->second.sharers = std::uint64_t{1} << core;
        it->second.exclusive = true;
        it->second.l2Dirty = true;
        l1d_[core].markExclusive(lineAddr, true);
        stats_.upgrades++;
        return cfg_.upgradeCycles;
    }

    cs.l1dMisses++;
    bool fill_exclusive = false;
    std::uint32_t lat =
        l2Access(core, lineAddr, store, next_use, fill_exclusive);
    auto victim = l1d_[core].insert(
        lineAddr,
        fill_exclusive ? L1Cache::LineState::Exclusive
                       : L1Cache::LineState::Shared,
        store);
    handleL1Victim(core, victim);
    return lat;
}

std::uint32_t
CmpSystem::fetchInstructions(std::uint32_t core, std::uint64_t n)
{
    CoreState& s = coreState_[core];
    CoreStats& cs = stats_.cores[core];
    std::uint32_t stall = 0;

    // Advance the code cursor; access the L1I once per line transition.
    std::uint64_t remaining = n;
    while (remaining > 0) {
        std::uint64_t in_line = cfg_.instrPerCodeLine - s.instrIntoLine;
        if (remaining < in_line) {
            s.instrIntoLine += static_cast<std::uint32_t>(remaining);
            break;
        }
        remaining -= in_line;
        s.instrIntoLine = 0;
        if (rng_.uniform() < cfg_.codeJumpProb) {
            s.codeLine = rng_.below(cfg_.codeLines);
        } else {
            s.codeLine = (s.codeLine + 1) % cfg_.codeLines;
        }

        Addr line = s.codeBase + s.codeLine;
        cs.l1iAccesses++;
        if (l1i_[core].access(line, false) == L1Cache::LineState::Invalid) {
            cs.l1iMisses++;
            bool fill_exclusive = false;
            stall += l2Access(core, line, false, cfg_.codeNextUseDistance,
                              fill_exclusive);
            auto victim =
                l1i_[core].insert(line, L1Cache::LineState::Shared, false);
            handleL1Victim(core, victim);
        }
    }
    return stall;
}

void
CmpSystem::stepCore(std::uint32_t core)
{
    CoreState& s = coreState_[core];
    CoreStats& cs = stats_.cores[core];
    zc_assert(s.gen != nullptr);

    MemRecord rec = s.gen->next();
    std::uint64_t n = static_cast<std::uint64_t>(rec.instGap) + 1;
    cs.instructions += n;
    cs.cycles += n; // IPC = 1 baseline
    cs.cycles += fetchInstructions(core, n);
    cs.cycles += dataAccess(core, rec.lineAddr,
                            rec.type == AccessType::Store, rec.nextUse);

    if (cfg_.epochInstr > 0) {
        instrSinceEpoch_ += n;
        if (instrSinceEpoch_ >= cfg_.epochInstr) {
            instrSinceEpoch_ -= cfg_.epochInstr;
            takeEpochSample();
        }
    }
}

void
CmpSystem::takeEpochSample()
{
    EpochBaseline now;
    now.l2Accesses = stats_.l2Accesses;
    now.l2Misses = stats_.l2Misses;
    for (const auto& b : banks_) {
        now.tagAccesses += b->stats().tagReads + b->stats().tagWrites;
    }
    for (ZArray* z : zbanks_) {
        now.walks += z->walkStats().walks;
        now.candidates += z->walkStats().candidatesTotal;
        now.relocations += z->walkStats().relocationsTotal;
    }

    EpochSample s;
    s.instructions = stats_.totalInstructions();
    s.cycles = stats_.maxCycles();
    s.l2Accesses = now.l2Accesses - epochBase_.l2Accesses;
    s.l2Misses = now.l2Misses - epochBase_.l2Misses;
    s.tagAccesses = now.tagAccesses - epochBase_.tagAccesses;
    s.walks = now.walks - epochBase_.walks;
    s.candidatesTotal = now.candidates - epochBase_.candidates;
    s.relocations = now.relocations - epochBase_.relocations;
    epochs_.push_back(s);
    epochBase_ = now;
}

void
CmpSystem::rebaseEpochs()
{
    epochs_.clear();
    instrSinceEpoch_ = 0;
    epochBase_ = EpochBaseline{};
    // Bank counters were just reset (or are zero at construction), so
    // the zero baseline matches the cumulative counters.
}

void
CmpSystem::run(std::uint64_t instr_per_core)
{
    std::vector<std::uint64_t> target(cfg_.numCores);
    for (std::uint32_t c = 0; c < cfg_.numCores; c++) {
        target[c] = stats_.cores[c].instructions + instr_per_core;
    }
    bool work = true;
    while (work) {
        // Cooperative cancellation point: a sweep job that blows its
        // wall-clock budget unwinds here as StatusError(Timeout).
        JobWatchdog::checkpoint();
        work = false;
        for (std::uint32_t c = 0; c < cfg_.numCores; c++) {
            if (stats_.cores[c].instructions < target[c]) {
                stepCore(c);
                work = true;
            }
        }
    }
}

void
CmpSystem::resetStats()
{
    auto cores = std::move(stats_.cores);
    stats_ = SystemStats{};
    for (auto& c : cores) c = CoreStats{};
    stats_.cores = std::move(cores);
    for (auto& b : banks_) b->resetStats();
    rebaseEpochs();
    // Core cycle counters restart at zero; the throttle clocks must
    // restart with them or token refills stall for the whole
    // measurement window.
    globalNow_ = 0;
    std::fill(bankTokenStamp_.begin(), bankTokenStamp_.end(), 0);
    if (cfg_.walkThrottle) {
        std::fill(bankTokens_.begin(), bankTokens_.end(),
                  static_cast<double>(cfg_.walkTokenWindow));
    }
}

EnergyEvents
CmpSystem::energyEvents() const
{
    EnergyEvents ev;
    for (const auto& c : stats_.cores) {
        ev.instructions += c.instructions;
        ev.l1Accesses += c.l1dAccesses + c.l1iAccesses;
    }
    for (const auto& b : banks_) {
        const ArrayStats& s = b->stats();
        ev.l2TagReads += s.tagReads;
        ev.l2TagWrites += s.tagWrites;
        ev.l2DataReads += s.dataReads;
        ev.l2DataWrites += s.dataWrites;
    }
    // L1 write-backs cost an L2 tag read + data write each.
    ev.l2TagReads += stats_.l1Writebacks;
    ev.l2DataWrites += stats_.l1Writebacks;
    ev.l2Accesses = stats_.l2Accesses + stats_.l1Writebacks;
    ev.l2Hits = stats_.l2Hits;
    ev.dramAccesses = stats_.dramAccesses;
    ev.cycles = stats_.maxCycles();
    return ev;
}

void
CmpSystem::registerStats(StatGroup& g)
{
    g.addCounter("instructions", "total instructions across cores",
                 [this] { return stats_.totalInstructions(); });
    g.addCounter("cycles", "wall-clock cycles (max over cores)",
                 [this] { return stats_.maxCycles(); });
    g.addScalar("aggregate_ipc", "sum of per-core IPCs",
                [this] { return stats_.aggregateIpc(); });

    StatGroup& cores = g.group("cores", "per-core pipeline and L1 stats");
    for (std::uint32_t c = 0; c < cfg_.numCores; c++) {
        StatGroup& cg = cores.group("core" + std::to_string(c));
        const CoreStats* cs = &stats_.cores[c];
        cg.addCounter("instructions", "instructions retired",
                      [cs] { return cs->instructions; });
        cg.addCounter("cycles", "cycles elapsed",
                      [cs] { return cs->cycles; });
        cg.addScalar("ipc", "instructions per cycle",
                     [cs] { return cs->ipc(); });
        cg.addCounter("l1d_accesses", "L1D demand accesses",
                      [cs] { return cs->l1dAccesses; });
        cg.addCounter("l1d_misses", "L1D misses",
                      [cs] { return cs->l1dMisses; });
        cg.addCounter("l1i_accesses", "L1I line fetches",
                      [cs] { return cs->l1iAccesses; });
        cg.addCounter("l1i_misses", "L1I misses",
                      [cs] { return cs->l1iMisses; });
        l1d_[c].registerStats(cg.group("l1d"));
        l1i_[c].registerStats(cg.group("l1i"));
    }

    StatGroup& l2 = g.group("l2", "shared inclusive L2");
    l2.addCounter("accesses", "demand accesses",
                  [this] { return stats_.l2Accesses; });
    l2.addCounter("hits", "demand hits", [this] { return stats_.l2Hits; });
    l2.addCounter("misses", "demand misses",
                  [this] { return stats_.l2Misses; });
    l2.addScalar("mpki", "misses per kilo-instruction",
                 [this] { return stats_.l2Mpki(); });
    l2.addCounter("evictions", "replacement evictions",
                  [this] { return stats_.l2Evictions; });
    l2.addCounter("writebacks", "dirty evictions to DRAM",
                  [this] { return stats_.l2Writebacks; });
    l2.addCounter("l1_writebacks", "dirty L1 evictions folded in",
                  [this] { return stats_.l1Writebacks; });
    l2.addCounter("throttled_walks", "walks capped below nominal R",
                  [this] { return stats_.throttledWalks; });
    for (std::uint32_t b = 0; b < numBanks(); b++) {
        banks_[b]->registerStats(l2.group("bank" + std::to_string(b)));
    }

    StatGroup& dir = g.group("coherence", "MESI directory activity");
    dir.addCounter("entries", "directory entries resident", [this] {
        return std::uint64_t{directory_.size()};
    });
    dir.addCounter("invalidations", "L1 invalidations sent",
                   [this] { return stats_.invalidations; });
    dir.addCounter("upgrades", "Shared->Exclusive upgrades",
                   [this] { return stats_.upgrades; });
    dir.addCounter("downgrades", "Exclusive->Shared downgrades",
                   [this] { return stats_.downgrades; });
    dir.addCounter("dram_accesses", "DRAM accesses (fills + writebacks)",
                   [this] { return stats_.dramAccesses; });

    StatGroup& ep = g.group("epochs", "epoch-sampler time series");
    ep.addConst("interval_instructions",
                "total instructions between samples (0 = sampler off)",
                JsonValue(cfg_.epochInstr));
    ep.addCustom("samples",
                 "interval counters per epoch; instructions/cycles are "
                 "cumulative and monotone",
                 [this] {
                     JsonValue out = JsonValue::array();
                     for (const EpochSample& s : epochs_) {
                         JsonValue e = JsonValue::object();
                         e.set("instructions", JsonValue(s.instructions));
                         e.set("cycles", JsonValue(s.cycles));
                         e.set("l2_accesses", JsonValue(s.l2Accesses));
                         e.set("l2_misses", JsonValue(s.l2Misses));
                         e.set("miss_rate", JsonValue(s.missRate()));
                         e.set("tag_accesses", JsonValue(s.tagAccesses));
                         e.set("walks", JsonValue(s.walks));
                         e.set("avg_walk_candidates",
                               JsonValue(s.avgWalkCandidates()));
                         e.set("relocations", JsonValue(s.relocations));
                         out.push(std::move(e));
                     }
                     return out;
                 });
}

} // namespace zc
