/**
 * @file
 * Experiment runner: one full CMP simulation of a named workload on a
 * given L2 organization, with warmup, measurement, and energy
 * accounting — the unit of work behind Fig. 4, Fig. 5 and the Section
 * VI-D bandwidth analysis. Shared by bench/ and examples/.
 */

#pragma once

#include <cstdint>
#include <string>

#include "cache/array_factory.hpp"
#include "common/json.hpp"
#include "energy/system_energy.hpp"
#include "sim/cmp_system.hpp"
#include "sim/config.hpp"

namespace zc {

struct RunParams
{
    std::string workload = "gcc";
    ArraySpec l2Spec;               ///< blocks derived from l2 size
    bool serialLookup = true;
    std::uint64_t warmupInstr = 150000;  ///< per core
    std::uint64_t measureInstr = 150000; ///< per core
    std::uint64_t seed = 1;
    SystemConfig base;              ///< Table I defaults

    /**
     * Epoch-sampler interval in *total* instructions across cores;
     * 0 = auto (numCores * measureInstr / 8, i.e. ~8 samples per run).
     * Sampling is read-only — it never perturbs the simulation.
     */
    std::uint64_t epochInstr = 0;

    /** L2 walk-event trace entries per bank (zcache only; 0 = off). */
    std::uint32_t walkTraceCapacity = 0;

    /**
     * Replay a recorded trace file (trace/trace_io.hpp) instead of the
     * synthetic workload: every core replays the stream. Non-OPT runs
     * stream records straight off disk through StreamedTraceGenerator —
     * peak RSS stays at one chunk buffer however long the trace is.
     * Only OPT materializes (its backward future-use pass needs the
     * whole trace). Empty = synthetic generators (the default).
     */
    std::string tracePath;

    /**
     * Field-level validation: workload exists, instruction budgets are
     * sane, the L2 spec satisfies the constraints its array constructor
     * enforces (cache/array_factory.hpp validateSpec), and the base
     * system config is self-consistent. Every error names the offending
     * field and value. runExperiment() runs this first and throws the
     * result as StatusError, so a bad point fails alone in a sweep.
     */
    Status validate() const;
};

struct RunResult
{
    double ipc = 0.0;          ///< aggregate (sum of per-core) IPC
    double mpki = 0.0;         ///< L2 misses per kilo-instruction
    double bipsPerWatt = 0.0;  ///< Fig. 5 energy-efficiency metric
    double totalJoules = 0.0;

    std::uint64_t instructions = 0;
    std::uint64_t cycles = 0;
    std::uint64_t l2Accesses = 0;
    std::uint64_t l2Misses = 0;

    /** L2 tag-array accesses (reads+writes), walks included. */
    std::uint64_t l2TagAccesses = 0;

    /** Walk statistics (zcache organizations; zero otherwise). */
    double avgWalkCandidates = 0.0;
    double avgRelocations = 0.0;

    std::uint32_t bankLatencyCycles = 0;
    EnergyBreakdown energy;

    // Derived bandwidth figures (Section VI-D), per bank per cycle.
    double loadPerBankCycle = 0.0;    ///< core-demand L2 accesses
    double tagPerBankCycle = 0.0;     ///< total tag-array accesses
    double missPerBankCycle = 0.0;

    /**
     * The complete hierarchical stats tree of the run, dumped from the
     * StatsRegistry every component registered into: run metadata and
     * summary metrics, per-core counters and IPC, per-bank array stats
     * (zcache walk counters and the opt-in walk trace), coherence and
     * energy breakdowns, and the epoch time series. The scalar fields
     * above are conveniences for benches; this tree is the full record
     * and what --json outputs serialize.
     */
    JsonValue stats;

    std::vector<EpochSample> epochs; ///< epoch series (measurement phase)
};

/** Run one experiment end to end. */
RunResult runExperiment(const RunParams& params);

/**
 * Serialize a RunResult so it round-trips exactly: every scalar, the
 * energy breakdown, the epoch series, and the full stats tree. The
 * sweep journal (runner/journal.hpp) stores these records so a resumed
 * sweep (--resume) reproduces byte-identical reports without re-running
 * completed points — doubles survive because the JSON writer emits
 * %.17g, which uniquely identifies the bit pattern.
 */
JsonValue runResultToJson(const RunResult& r);

/** Inverse of runResultToJson; structured error on malformed input. */
Expected<RunResult> runResultFromJson(const JsonValue& v);

} // namespace zc
