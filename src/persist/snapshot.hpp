/**
 * @file
 * Per-shard point-in-time snapshot blobs (docs/durability.md): the
 * compaction unit that lets the op log be truncated behind it.
 *
 * Layout (little-endian, CRC-framed like trace format v2):
 *
 *   Header  28 B  magic "ZKSS" | version u32 | shard u32
 *                 | watermark u64 | count u64
 *   Entries 16 B x count  (key u64, value u64)
 *   Footer   8 B  CRC-32 over header+entries | magic "ZKSE"
 *
 * `watermark` is the shard's last assigned seqno at capture time —
 * taken under the shard lock together with the key enumeration, so the
 * snapshot is exactly the state after applying every op with seqno <=
 * watermark. Recovery loads the snapshot, then replays only log
 * records with seqno > watermark.
 *
 * Snapshots are written whole through SinkBackend::atomicWrite
 * (tmp + fsync + rename), so a crash mid-compaction leaves the
 * previous snapshot intact; decode rejects any torn or bit-flipped
 * blob with a structured Truncated/Corruption status and recovery
 * falls back to replaying the full log.
 */

#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/status.hpp"

namespace zc::persist {

constexpr std::uint32_t kSnapMagic = 0x53534b5aU;    ///< "ZKSS"
constexpr std::uint32_t kSnapEndMagic = 0x45534b5aU; ///< "ZKSE"
constexpr std::uint32_t kSnapVersion = 1;

struct SnapshotData
{
    std::uint64_t watermark = 0; ///< last seqno applied to this state
    std::vector<std::pair<std::uint64_t, std::uint64_t>> entries;
};

/** Encode @p snap for shard @p shard as one durable blob. */
std::vector<std::uint8_t> encodeSnapshot(std::uint32_t shard,
                                         const SnapshotData& snap);

/**
 * Decode and verify a snapshot blob. @p expectShard guards against a
 * misplaced file; any size/magic/CRC disagreement is a structured
 * Truncated/Corruption status naming the exact byte offset, checked
 * before the entry vector is allocated (a corrupt count cannot
 * translate into a massive allocation).
 */
Expected<SnapshotData> decodeSnapshot(const std::uint8_t* data,
                                      std::size_t len,
                                      std::uint32_t expectShard);

} // namespace zc::persist
