/**
 * @file
 * Snapshot blob codec (persist/snapshot.hpp). Verification order
 * mirrors trace_io: magic, version, size-vs-count, CRC — all before
 * the entry vector is reserved.
 */

#include "persist/snapshot.hpp"

#include "common/crc32.hpp"
#include "common/framed_log.hpp"

namespace zc::persist {

namespace {

constexpr std::size_t kHeaderLen = 4 + 4 + 4 + 8 + 8;
constexpr std::size_t kEntryLen = 16;
constexpr std::size_t kFooterLen = 8;

} // namespace

std::vector<std::uint8_t>
encodeSnapshot(std::uint32_t shard, const SnapshotData& snap)
{
    std::vector<std::uint8_t> out;
    out.reserve(kHeaderLen + snap.entries.size() * kEntryLen + kFooterLen);
    framed::appendLe32(out, kSnapMagic);
    framed::appendLe32(out, kSnapVersion);
    framed::appendLe32(out, shard);
    framed::appendLe64(out, snap.watermark);
    framed::appendLe64(out, snap.entries.size());
    for (const auto& [key, value] : snap.entries) {
        framed::appendLe64(out, key);
        framed::appendLe64(out, value);
    }
    std::uint32_t crc = Crc32::of(out.data(), out.size());
    framed::appendLe32(out, crc);
    framed::appendLe32(out, kSnapEndMagic);
    return out;
}

Expected<SnapshotData>
decodeSnapshot(const std::uint8_t* data, std::size_t len,
               std::uint32_t expectShard)
{
    if (len < kHeaderLen) {
        return Status::truncated(
            "snapshot: " + std::to_string(len) +
            " byte(s), header needs " + std::to_string(kHeaderLen));
    }
    if (framed::readLe32(data) != kSnapMagic) {
        return Status::corruption("snapshot: bad magic");
    }
    std::uint32_t version = framed::readLe32(data + 4);
    if (version != kSnapVersion) {
        return Status::unsupported("snapshot: unknown version " +
                                   std::to_string(version));
    }
    std::uint32_t shard = framed::readLe32(data + 8);
    if (shard != expectShard) {
        return Status::corruption(
            "snapshot: belongs to shard " + std::to_string(shard) +
            ", expected shard " + std::to_string(expectShard));
    }
    std::uint64_t count = framed::readLe64(data + 20);

    // Size check before any allocation sized by the untrusted count.
    std::uint64_t want =
        kHeaderLen + count * kEntryLen + kFooterLen;
    if (count > (len / kEntryLen) + 1 || len < want) {
        return Status::truncated(
            "snapshot: file is " + std::to_string(len) +
            " byte(s) but count " + std::to_string(count) + " implies " +
            std::to_string(want));
    }
    if (len > want) {
        return Status::corruption(
            "snapshot: " + std::to_string(len - want) +
            " trailing byte(s) after offset " + std::to_string(want));
    }

    std::size_t body = kHeaderLen + static_cast<std::size_t>(count) *
                                        kEntryLen;
    std::uint32_t got = Crc32::of(data, body);
    std::uint32_t wantCrc = framed::readLe32(data + body);
    if (got != wantCrc) {
        char buf[64];
        std::snprintf(buf, sizeof buf,
                      "snapshot: CRC mismatch (computed %08x, recorded "
                      "%08x)",
                      got, wantCrc);
        return Status::corruption(buf);
    }
    if (framed::readLe32(data + body + 4) != kSnapEndMagic) {
        return Status::corruption("snapshot: bad end magic");
    }

    SnapshotData snap;
    snap.watermark = framed::readLe64(data + 12);
    snap.entries.reserve(static_cast<std::size_t>(count));
    const std::uint8_t* p = data + kHeaderLen;
    for (std::uint64_t i = 0; i < count; i++, p += kEntryLen) {
        snap.entries.emplace_back(framed::readLe64(p),
                                  framed::readLe64(p + 8));
    }
    return snap;
}

} // namespace zc::persist
