/**
 * @file
 * The zkv op-log record (docs/durability.md): one fixed-size,
 * CRC-framed, little-endian binary record per acknowledged mutation,
 * appended to a shard's log segment by its writer thread and replayed
 * over the latest snapshot at recovery.
 *
 * Layout (33 bytes, via common/framed_log.hpp binary framing):
 *
 *   magic  u32  "ZKOP"
 *   body   25B  seqno u64 | kind u8 (Put=1/Erase=2/Evict=3)
 *               | key u64 | value u64
 *   crc    u32  CRC-32 over the body
 *
 * Fixed size makes every record boundary a pure function of the byte
 * offset, which is what lets torn-tail salvage and the seqno-gap
 * report name *exact* offsets (the every-byte-offset truncation
 * property test in tests/test_persist.cpp pins this down).
 *
 * Seqnos are assigned per shard, under the shard lock, at mutate time
 * — so on-disk order is exactly in-memory apply order. Within a log
 * they must be strictly increasing: a non-increasing seqno marks a
 * corrupt tail (salvaged like runner/journal.cpp), while a gap of more
 * than one marks records dropped under `backpressure=drop` (counted
 * with the byte offset in the RecoveryReport, never fatal).
 */

#pragma once

#include <cstdint>
#include <vector>

#include "common/framed_log.hpp"
#include "common/status.hpp"

namespace zc::persist {

enum class OpKind : std::uint8_t {
    Put = 1,   ///< key now holds value
    Erase = 2, ///< key removed by a client erase
    Evict = 3, ///< key displaced by the relocation walk (replays as
               ///< an erase: evicted keys must not resurrect)
};

/** "ZKOP" little-endian. */
constexpr std::uint32_t kOpMagic = 0x504f4b5aU;

struct OpRecord
{
    std::uint64_t seqno = 0;
    OpKind kind = OpKind::Put;
    std::uint64_t key = 0;
    std::uint64_t value = 0; ///< Put only; 0 for Erase/Evict
};

constexpr std::size_t kOpBodyLen = 8 + 1 + 8 + 8;
constexpr std::size_t kOpRecordSize = framed::binaryRecordSize(kOpBodyLen);
static_assert(kOpRecordSize == 33);

inline void
storeLe64(std::uint8_t* p, std::uint64_t v)
{
    for (int i = 0; i < 8; i++) p[i] = static_cast<std::uint8_t>(v >> 8 * i);
}

inline void
encodeOpRecord(std::vector<std::uint8_t>& out, const OpRecord& r)
{
    std::uint8_t body[kOpBodyLen];
    storeLe64(body, r.seqno);
    body[8] = static_cast<std::uint8_t>(r.kind);
    storeLe64(body + 9, r.key);
    storeLe64(body + 17, r.value);
    framed::appendBinaryRecord(out, kOpMagic, body, kOpBodyLen);
}

/**
 * Decode one record at @p data with @p avail bytes remaining.
 * Truncated = torn tail (fewer than 33 bytes remain); Corruption =
 * bad magic, bad CRC, or an unknown op kind.
 */
inline Expected<OpRecord>
decodeOpRecord(const std::uint8_t* data, std::size_t avail)
{
    auto body_or =
        framed::unframeBinaryRecord(data, avail, kOpMagic, kOpBodyLen);
    if (!body_or) return body_or.status();
    const std::uint8_t* b = *body_or;
    OpRecord r;
    r.seqno = framed::readLe64(b);
    std::uint8_t k = b[8];
    if (k < 1 || k > 3) {
        return Status::corruption("op record: unknown kind " +
                                  std::to_string(k));
    }
    r.kind = static_cast<OpKind>(k);
    r.key = framed::readLe64(b + 9);
    r.value = framed::readLe64(b + 17);
    return r;
}

} // namespace zc::persist
