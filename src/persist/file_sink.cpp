/**
 * @file
 * FileSink/FileBackend: the filesystem implementation of the sink
 * layer (docs/durability.md). All failure paths return structured
 * Status with errno text; atomicWrite is tmp + fsync + rename + parent
 * directory fsync, the same recipe every journaling store uses so a
 * crash can never leave a torn object under the live name.
 */

#include "persist/sink.hpp"

#include <cerrno>
#include <cstring>

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>

namespace zc::persist {

namespace {

std::string
errnoMessage()
{
    return std::strerror(errno);
}

Status
ioFail(const std::string& path, const char* what)
{
    return Status::ioError("persist '" + path + "': " + what + ": " +
                           errnoMessage());
}

/** mkdir -p: create @p dir and any missing parents. */
Status
makeDirs(const std::string& dir)
{
    std::string partial;
    std::size_t pos = 0;
    while (pos <= dir.size()) {
        std::size_t slash = dir.find('/', pos);
        if (slash == std::string::npos) slash = dir.size();
        partial = dir.substr(0, slash);
        pos = slash + 1;
        if (partial.empty()) continue; // leading '/'
        if (::mkdir(partial.c_str(), 0777) != 0 && errno != EEXIST) {
            return ioFail(partial, "cannot create directory");
        }
    }
    return Status::ok();
}

/** fsync a directory so a rename/create inside it is itself durable. */
Status
syncDir(const std::string& dir)
{
    int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (dfd < 0) return ioFail(dir, "cannot open directory for fsync");
    int rc = ::fsync(dfd);
    int saved = errno;
    ::close(dfd);
    if (rc != 0) {
        errno = saved;
        return ioFail(dir, "directory fsync failed");
    }
    return Status::ok();
}

} // namespace

// ---- FileSink -------------------------------------------------------

FileSink::~FileSink()
{
    if (fd_ >= 0) ::close(fd_);
}

Expected<std::unique_ptr<FileSink>>
FileSink::open(const std::string& path)
{
    int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0666);
    if (fd < 0) {
        return ioFail(path, "cannot open for append");
    }
    struct stat st{};
    if (::fstat(fd, &st) != 0) {
        int saved = errno;
        ::close(fd);
        errno = saved;
        return ioFail(path, "fstat failed");
    }
    return std::unique_ptr<FileSink>(new FileSink(
        fd, path, static_cast<std::uint64_t>(st.st_size)));
}

Status
FileSink::append(const void* data, std::size_t len)
{
    const auto* p = static_cast<const std::uint8_t*>(data);
    std::size_t off = 0;
    while (off < len) {
        ssize_t n = ::write(fd_, p + off, len - off);
        if (n < 0) {
            if (errno == EINTR) continue;
            return ioFail(path_, "append failed");
        }
        off += static_cast<std::size_t>(n);
    }
    size_ += len;
    return Status::ok();
}

Status
FileSink::sync(bool dataOnly)
{
    int rc = dataOnly ? ::fdatasync(fd_) : ::fsync(fd_);
    if (rc != 0) {
        return ioFail(path_, dataOnly ? "fdatasync failed"
                                      : "fsync failed");
    }
    return Status::ok();
}

// ---- FileBackend ----------------------------------------------------

Expected<std::unique_ptr<FileBackend>>
FileBackend::open(const std::string& root)
{
    if (root.empty()) {
        return Status::invalidArgument(
            "persist: data directory path is empty");
    }
    if (Status s = makeDirs(root); !s.isOk()) return s;
    return std::unique_ptr<FileBackend>(new FileBackend(root));
}

std::string
FileBackend::path(const std::string& name) const
{
    return root_ + "/" + name;
}

Expected<std::unique_ptr<Sink>>
FileBackend::openAppend(const std::string& name)
{
    auto sink_or = FileSink::open(path(name));
    if (!sink_or) return sink_or.status();
    return std::unique_ptr<Sink>(std::move(*sink_or));
}

Expected<std::vector<std::uint8_t>>
FileBackend::readAll(const std::string& name)
{
    std::string p = path(name);
    int fd = ::open(p.c_str(), O_RDONLY);
    if (fd < 0) {
        if (errno == ENOENT) {
            return Status::notFound("persist '" + p + "': no such object");
        }
        return ioFail(p, "cannot open for read");
    }
    std::vector<std::uint8_t> out;
    std::uint8_t buf[65536];
    for (;;) {
        ssize_t n = ::read(fd, buf, sizeof buf);
        if (n < 0) {
            if (errno == EINTR) continue;
            int saved = errno;
            ::close(fd);
            errno = saved;
            return ioFail(p, "read failed");
        }
        if (n == 0) break;
        out.insert(out.end(), buf, buf + n);
    }
    ::close(fd);
    return out;
}

bool
FileBackend::exists(const std::string& name)
{
    struct stat st{};
    return ::stat(path(name).c_str(), &st) == 0;
}

Status
FileBackend::atomicWrite(const std::string& name, const void* data,
                         std::size_t len)
{
    std::string tmp = path(name) + ".tmp";
    int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0666);
    if (fd < 0) return ioFail(tmp, "cannot create");
    const auto* p = static_cast<const std::uint8_t*>(data);
    std::size_t off = 0;
    while (off < len) {
        ssize_t n = ::write(fd, p + off, len - off);
        if (n < 0) {
            if (errno == EINTR) continue;
            int saved = errno;
            ::close(fd);
            ::unlink(tmp.c_str());
            errno = saved;
            return ioFail(tmp, "write failed");
        }
        off += static_cast<std::size_t>(n);
    }
    if (::fsync(fd) != 0) {
        int saved = errno;
        ::close(fd);
        ::unlink(tmp.c_str());
        errno = saved;
        return ioFail(tmp, "fsync failed");
    }
    if (::close(fd) != 0) {
        ::unlink(tmp.c_str());
        return ioFail(tmp, "close failed");
    }
    if (::rename(tmp.c_str(), path(name).c_str()) != 0) {
        int saved = errno;
        ::unlink(tmp.c_str());
        errno = saved;
        return ioFail(path(name), "rename failed");
    }
    return syncDir(root_);
}

Status
FileBackend::truncateTo(const std::string& name, std::uint64_t size)
{
    std::string p = path(name);
    if (::truncate(p.c_str(), static_cast<off_t>(size)) != 0) {
        return ioFail(p, "truncate failed");
    }
    return Status::ok();
}

Status
FileBackend::remove(const std::string& name)
{
    std::string p = path(name);
    if (::unlink(p.c_str()) != 0 && errno != ENOENT) {
        return ioFail(p, "unlink failed");
    }
    return Status::ok();
}

Expected<std::vector<std::string>>
FileBackend::list(const std::string& prefix)
{
    DIR* d = ::opendir(root_.c_str());
    if (d == nullptr) return ioFail(root_, "cannot list directory");
    std::vector<std::string> out;
    while (dirent* e = ::readdir(d)) {
        std::string n = e->d_name;
        if (n == "." || n == "..") continue;
        if (n.compare(0, prefix.size(), prefix) == 0) out.push_back(n);
    }
    ::closedir(d);
    std::sort(out.begin(), out.end());
    return out;
}

} // namespace zc::persist
