/**
 * @file
 * PersistTier implementation (persist/persist.hpp). The concurrency
 * contract — who takes which lock, and why the snapshot thread is not
 * the writer — is documented in the header; this file keeps the
 * invariants local: every sink touch is under sinkMx, every
 * durableSeqno advance is under dmx + notify, every failure is sticky
 * and releases all waiters.
 */

#include "persist/persist.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "common/fault_injection.hpp"
#include "obs/spsc_ring.hpp"

namespace zc::persist {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t
elapsedNs(Clock::time_point t0)
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            Clock::now() - t0)
            .count());
}

/** How many records one writer iteration drains at most. */
constexpr std::size_t kWriterBatch = 4096;

/** Idle wait for the writer / blocked producers / durability waiters —
 *  a backstop only; notifications are the fast path. */
constexpr std::chrono::milliseconds kPollTick{10};

constexpr const char* kManifestName = "MANIFEST";
constexpr const char* kManifestTag = "ZKPM";

} // namespace

// ---- config ---------------------------------------------------------

const char*
fsyncPolicyName(FsyncPolicy p)
{
    switch (p) {
        case FsyncPolicy::Always: return "always";
        case FsyncPolicy::Interval: return "interval";
        case FsyncPolicy::Never: return "never";
    }
    return "?";
}

Expected<FsyncPolicy>
parseFsyncPolicy(const std::string& s)
{
    if (s == "always") return FsyncPolicy::Always;
    if (s == "interval") return FsyncPolicy::Interval;
    if (s == "never") return FsyncPolicy::Never;
    return Status::invalidArgument(
        "unknown fsync policy '" + s +
        "' (expected always|interval|never)");
}

const char*
backpressureName(Backpressure b)
{
    switch (b) {
        case Backpressure::Block: return "block";
        case Backpressure::Drop: return "drop";
    }
    return "?";
}

Expected<Backpressure>
parseBackpressure(const std::string& s)
{
    if (s == "block") return Backpressure::Block;
    if (s == "drop") return Backpressure::Drop;
    return Status::invalidArgument("unknown backpressure mode '" + s +
                                   "' (expected block|drop)");
}

Status
PersistConfig::validate() const
{
    if (!enabled()) return Status::ok();
    if (queueCap == 0) {
        return Status::invalidArgument(
            "persist: queue capacity must be positive");
    }
    if (fsync == FsyncPolicy::Interval && fsyncIntervalMs == 0) {
        return Status::invalidArgument(
            "persist: fsync=interval needs a positive interval");
    }
    if (fsync == FsyncPolicy::Always &&
        backpressure == Backpressure::Drop) {
        return Status::invalidArgument(
            "persist: fsync=always requires backpressure=block (a "
            "dropped record can never become durable, so an ack could "
            "wait forever)");
    }
    return Status::ok();
}

// ---- recovery report ------------------------------------------------

JsonValue
ShardRecovery::toJson() const
{
    JsonValue out = JsonValue::object();
    out.set("shard", JsonValue(std::uint64_t{shard}));
    out.set("snapshot_loaded", JsonValue(snapshotLoaded));
    out.set("snapshot_records", JsonValue(snapshotRecords));
    out.set("snapshot_watermark", JsonValue(snapshotWatermark));
    out.set("log_segments", JsonValue(logSegments));
    out.set("log_records", JsonValue(logRecords));
    out.set("replayed", JsonValue(replayed));
    out.set("skipped", JsonValue(skipped));
    out.set("valid_bytes", JsonValue(validBytes));
    out.set("salvaged_bytes", JsonValue(salvagedBytes));
    out.set("dropped_records", JsonValue(droppedRecords));
    out.set("high_water", JsonValue(highWater));
    JsonValue gapArr = JsonValue::array();
    for (const auto& g : gaps) {
        JsonValue j = JsonValue::object();
        j.set("segment", JsonValue(g.segment));
        j.set("byte_offset", JsonValue(g.byteOffset));
        j.set("prev_seqno", JsonValue(g.prevSeqno));
        j.set("next_seqno", JsonValue(g.nextSeqno));
        gapArr.push(std::move(j));
    }
    out.set("seqno_gaps", std::move(gapArr));
    JsonValue warnArr = JsonValue::array();
    for (const auto& w : warnings) warnArr.push(JsonValue(w));
    out.set("warnings", std::move(warnArr));
    return out;
}

std::uint64_t
RecoveryReport::totalReplayed() const
{
    std::uint64_t t = 0;
    for (const auto& s : shards) t += s.replayed;
    return t;
}

std::uint64_t
RecoveryReport::totalSkipped() const
{
    std::uint64_t t = 0;
    for (const auto& s : shards) t += s.skipped;
    return t;
}

std::uint64_t
RecoveryReport::totalSalvagedBytes() const
{
    std::uint64_t t = 0;
    for (const auto& s : shards) t += s.salvagedBytes;
    return t;
}

std::uint64_t
RecoveryReport::totalGaps() const
{
    std::uint64_t t = 0;
    for (const auto& s : shards) t += s.gaps.size();
    return t;
}

std::uint64_t
RecoveryReport::totalDroppedRecords() const
{
    std::uint64_t t = 0;
    for (const auto& s : shards) t += s.droppedRecords;
    return t;
}

JsonValue
RecoveryReport::toJson() const
{
    JsonValue out = JsonValue::object();
    out.set("shards", JsonValue(std::uint64_t{shards.size()}));
    out.set("replayed", JsonValue(totalReplayed()));
    out.set("skipped", JsonValue(totalSkipped()));
    out.set("salvaged_bytes", JsonValue(totalSalvagedBytes()));
    out.set("seqno_gaps", JsonValue(totalGaps()));
    out.set("dropped_records", JsonValue(totalDroppedRecords()));
    JsonValue arr = JsonValue::array();
    for (const auto& s : shards) arr.push(s.toJson());
    out.set("per_shard", std::move(arr));
    return out;
}

// ---- shard state ----------------------------------------------------

struct PersistTier::ShardState
{
    explicit ShardState(std::size_t queueCap) : queue(queueCap) {}

    // Producer side: filled under the owning zkv shard lock (which is
    // what makes this queue single-producer).
    SpscRing<OpRecord> queue;
    std::mutex qmx; ///< sleep/wake only; the ring itself is lock-free
    std::condition_variable qcvData;  ///< producer -> writer
    std::condition_variable qcvSpace; ///< writer -> blocked producer

    // Sink side: the writer appends, the snapshot thread rotates.
    std::mutex sinkMx;
    std::unique_ptr<Sink> sink;   ///< guarded by sinkMx once started
    std::uint64_t segment = 0;    ///< guarded by sinkMx once started

    // Durability side: group-commit waiters under fsync=always.
    std::mutex dmx;
    std::condition_variable dcv;
    Status error;                    ///< sticky first failure, under dmx
    std::atomic<bool> failed{false};
    std::atomic<bool> writerDone{false};

    std::atomic<std::uint64_t> lastSeqno{0};
    std::atomic<std::uint64_t> appendedSeqno{0};
    std::atomic<std::uint64_t> durableSeqno{0};
    std::atomic<std::uint64_t> opsSinceSnapshot{0};

    std::atomic<std::uint64_t> blocked{0};
    std::atomic<std::uint64_t> appended{0};
    std::atomic<std::uint64_t> appendBytes{0};
    std::atomic<std::uint64_t> fsyncs{0};
    std::atomic<std::uint64_t> snapshots{0};
    std::atomic<std::uint64_t> snapshotRecords{0};
    std::atomic<std::uint64_t> appendErrors{0};
    std::atomic<std::uint64_t> fsyncErrors{0};
    std::atomic<std::uint64_t> snapshotErrors{0};
    std::atomic<std::uint64_t> discardedAfterError{0};
    std::atomic<std::uint64_t> appendNs{0};
    std::atomic<std::uint64_t> fsyncNs{0};
    std::atomic<std::uint64_t> snapshotNs{0};

    std::thread writer;
};

// ---- lifecycle ------------------------------------------------------

PersistTier::PersistTier(PersistConfig cfg,
                         std::unique_ptr<SinkBackend> backend,
                         std::uint32_t shards)
    : cfg_(std::move(cfg)), backend_(std::move(backend))
{
    shards_.reserve(shards);
    for (std::uint32_t i = 0; i < shards; i++) {
        shards_.push_back(std::make_unique<ShardState>(cfg_.queueCap));
    }
}

PersistTier::~PersistTier()
{
    Status ignored = stop();
    (void)ignored;
}

Expected<std::unique_ptr<PersistTier>>
PersistTier::open(const PersistConfig& cfg, std::uint32_t shards,
                  const std::string& identity)
{
    if (!cfg.enabled()) {
        return Status::invalidArgument(
            "persist: open() needs a data directory");
    }
    if (Status s = cfg.validate(); !s.isOk()) return s;
    if (shards == 0) {
        return Status::invalidArgument(
            "persist: shard count must be positive");
    }
    auto backend_or = FileBackend::open(cfg.dataDir);
    if (!backend_or) return backend_or.status();
    std::unique_ptr<SinkBackend> backend = std::move(*backend_or);

    // The MANIFEST pins the store shape. Replaying shard-partitioned
    // logs into a differently-sharded (or differently-configured)
    // store would scatter keys to the wrong shards — refuse, exactly
    // like the sweep journal's fingerprint check.
    const std::string payload = "zkv-persist v1 shards=" +
                                std::to_string(shards) +
                                " identity=" + identity;
    if (backend->exists(kManifestName)) {
        auto data_or = backend->readAll(kManifestName);
        if (!data_or) return data_or.status();
        std::string text(data_or->begin(), data_or->end());
        std::size_t nl = text.find('\n');
        std::string_view line(
            text.data(), nl == std::string::npos ? text.size() : nl);
        auto got_or = framed::unframeTextLine(line, kManifestTag);
        if (!got_or) {
            return Status::corruption("persist '" + cfg.dataDir +
                                      "' MANIFEST: " +
                                      got_or.status().message());
        }
        if (*got_or != payload) {
            return Status::invalidArgument(
                "persist '" + cfg.dataDir +
                "': MANIFEST belongs to a different store (found \"" +
                std::string(*got_or) + "\", this store is \"" + payload +
                "\"); refusing to recover — delete the directory or "
                "point --data-dir elsewhere");
        }
    } else {
        const std::string mpath = cfg.dataDir + "/" + kManifestName;
        std::FILE* f = std::fopen(mpath.c_str(), "wb");
        if (f == nullptr) {
            return Status::ioError("persist '" + mpath +
                                   "': cannot create: " +
                                   std::strerror(errno));
        }
        Status s = framed::writeTextLine(
            f, "manifest '" + mpath + "'", kManifestTag, payload);
        std::fclose(f);
        if (!s.isOk()) return s;
    }
    return std::unique_ptr<PersistTier>(
        new PersistTier(cfg, std::move(backend), shards));
}

void
PersistTier::setSnapshotSource(
    std::function<SnapshotData(std::uint32_t)> fn)
{
    snapshotFn_ = std::move(fn);
}

std::string
PersistTier::segmentName(std::uint32_t shard, std::uint64_t segment) const
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "shard%u-%06llu.log", shard,
                  static_cast<unsigned long long>(segment));
    return buf;
}

std::string
PersistTier::snapName(std::uint32_t shard) const
{
    return "shard" + std::to_string(shard) + ".snap";
}

Expected<std::vector<std::pair<std::uint64_t, std::string>>>
PersistTier::listSegments(std::uint32_t shard)
{
    const std::string prefix = "shard" + std::to_string(shard) + "-";
    auto names_or = backend_->list(prefix);
    if (!names_or) return names_or.status();
    std::vector<std::pair<std::uint64_t, std::string>> out;
    for (const auto& name : *names_or) {
        constexpr std::string_view suffix = ".log";
        if (name.size() < prefix.size() + suffix.size()) continue;
        if (name.compare(name.size() - suffix.size(), suffix.size(),
                         suffix) != 0) {
            continue; // snapshots' ".tmp" leftovers etc.
        }
        std::string digits = name.substr(
            prefix.size(), name.size() - prefix.size() - suffix.size());
        if (digits.empty() ||
            digits.find_first_not_of("0123456789") != std::string::npos) {
            continue;
        }
        out.emplace_back(std::stoull(digits), name);
    }
    std::sort(out.begin(), out.end());
    return out;
}

Status
PersistTier::start()
{
    if (!recovered_) {
        return Status::invalidArgument(
            "persist: start() requires recover() first (a fresh "
            "directory recovers trivially)");
    }
    if (!joined_) {
        return Status::invalidArgument("persist: already started");
    }
    for (std::uint32_t i = 0; i < shards_.size(); i++) {
        ShardState& st = *shards_[i];
        auto sink_or = backend_->openAppend(segmentName(i, st.segment));
        if (!sink_or) return sink_or.status();
        st.sink = std::move(*sink_or);
        st.writerDone.store(false, std::memory_order_relaxed);
    }
    stopping_.store(false, std::memory_order_release);
    joined_ = false;
    for (std::uint32_t i = 0; i < shards_.size(); i++) {
        shards_[i]->writer =
            std::thread(&PersistTier::writerLoop, this, i);
    }
    if (cfg_.snapshotEveryOps > 0) {
        snapThread_ = std::thread(&PersistTier::snapshotLoop, this);
    }
    active_.store(true, std::memory_order_release);
    return Status::ok();
}

Status
PersistTier::stop()
{
    if (joined_) return error();
    active_.store(false, std::memory_order_release);
    stopping_.store(true, std::memory_order_release);
    for (auto& st : shards_) {
        std::lock_guard<std::mutex> lk(st->qmx);
        st->qcvData.notify_all();
        st->qcvSpace.notify_all();
    }
    scv_.notify_all();
    for (auto& st : shards_) {
        if (st->writer.joinable()) st->writer.join();
    }
    if (snapThread_.joinable()) snapThread_.join();
    joined_ = true;
    return error();
}

Status
PersistTier::error() const
{
    for (const auto& st : shards_) {
        if (st->failed.load(std::memory_order_acquire)) {
            std::lock_guard<std::mutex> lk(st->dmx);
            return st->error;
        }
    }
    return Status::ok();
}

// ---- producer side --------------------------------------------------

std::uint64_t
PersistTier::logOp(std::uint32_t shard, OpKind kind, std::uint64_t key,
                   std::uint64_t value)
{
    if (!active_.load(std::memory_order_acquire)) return 0;
    ShardState& st = *shards_[shard];
    // The seqno is consumed even when the record is then dropped: the
    // resulting gap in the on-disk sequence is the evidence recovery
    // reports (never a silent loss).
    const std::uint64_t seq =
        st.lastSeqno.fetch_add(1, std::memory_order_relaxed) + 1;
    const OpRecord r{seq, kind, key, value};
    if (!st.queue.tryPush(r)) {
        if (cfg_.backpressure == Backpressure::Drop) {
            st.queue.countDrop();
            st.qcvData.notify_one();
            return seq;
        }
        // Block: stall this producer (it holds the shard lock) until
        // the writer frees space. Timed waits are a backstop against a
        // lost notify, not the steady state.
        st.blocked.fetch_add(1, std::memory_order_relaxed);
        std::unique_lock<std::mutex> lk(st.qmx);
        for (;;) {
            st.qcvData.notify_one();
            if (st.queue.tryPush(r)) break;
            if (stopping_.load(std::memory_order_acquire)) {
                st.queue.countDrop();
                return seq;
            }
            st.qcvSpace.wait_for(lk, kPollTick);
        }
    }
    st.queue.countPush();
    st.opsSinceSnapshot.fetch_add(1, std::memory_order_relaxed);
    st.qcvData.notify_one();
    return seq;
}

std::uint64_t
PersistTier::logPut(std::uint32_t shard, std::uint64_t key,
                    std::uint64_t value)
{
    return logOp(shard, OpKind::Put, key, value);
}

std::uint64_t
PersistTier::logErase(std::uint32_t shard, std::uint64_t key)
{
    return logOp(shard, OpKind::Erase, key, 0);
}

std::uint64_t
PersistTier::logEvict(std::uint32_t shard, std::uint64_t key)
{
    return logOp(shard, OpKind::Evict, key, 0);
}

Status
PersistTier::waitDurable(std::uint32_t shard, std::uint64_t seqno)
{
    if (seqno == 0 || cfg_.fsync != FsyncPolicy::Always) {
        return Status::ok();
    }
    ShardState& st = *shards_[shard];
    if (st.durableSeqno.load(std::memory_order_acquire) >= seqno) {
        return Status::ok();
    }
    st.qcvData.notify_one(); // nudge the writer to commit the group
    std::unique_lock<std::mutex> lk(st.dmx);
    for (;;) {
        if (st.durableSeqno.load(std::memory_order_acquire) >= seqno) {
            return Status::ok();
        }
        if (st.failed.load(std::memory_order_acquire)) return st.error;
        if (st.writerDone.load(std::memory_order_acquire)) {
            return Status::ioError(
                "persist: shut down before seqno " +
                std::to_string(seqno) + " on shard " +
                std::to_string(shard) + " became durable");
        }
        st.dcv.wait_for(lk, kPollTick);
    }
}

std::uint64_t
PersistTier::lastSeqno(std::uint32_t shard) const
{
    return shards_[shard]->lastSeqno.load(std::memory_order_relaxed);
}

// ---- writer ---------------------------------------------------------

void
PersistTier::setFailure(ShardState& st, Status s)
{
    {
        std::lock_guard<std::mutex> lk(st.dmx);
        if (st.error.isOk()) st.error = std::move(s);
        st.failed.store(true, std::memory_order_release);
    }
    st.dcv.notify_all();
}

Status
PersistTier::syncShard(ShardState& st, bool* dirty)
{
    *dirty = false;
    if (st.failed.load(std::memory_order_acquire)) {
        std::lock_guard<std::mutex> lk(st.dmx);
        return st.error;
    }
    Status s;
    const auto t0 = Clock::now();
    {
        std::lock_guard<std::mutex> lk(st.sinkMx);
        if (ZC_INJECT_FAULT("persist.fsync")) {
            s = Status::ioError(
                "fault injection: induced log fsync failure at site "
                "'persist.fsync'");
        } else {
            s = st.sink->sync(cfg_.dataOnlySync);
        }
    }
    st.fsyncNs.fetch_add(elapsedNs(t0), std::memory_order_relaxed);
    if (!s.isOk()) {
        st.fsyncErrors.fetch_add(1, std::memory_order_relaxed);
        setFailure(st, s);
        return s;
    }
    st.fsyncs.fetch_add(1, std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lk(st.dmx);
        st.durableSeqno.store(
            st.appendedSeqno.load(std::memory_order_relaxed),
            std::memory_order_release);
    }
    st.dcv.notify_all();
    return Status::ok();
}

void
PersistTier::writerLoop(std::uint32_t shard)
{
    ShardState& st = *shards_[shard];
    std::vector<OpRecord> batch;
    std::vector<std::uint8_t> buf;
    bool dirty = false;
    auto lastSync = Clock::now();

    for (;;) {
        batch.clear();
        std::size_t n = st.queue.popBatch(batch, kWriterBatch);
        if (n > 0) st.qcvSpace.notify_all();

        if (!batch.empty()) {
            if (st.failed.load(std::memory_order_acquire)) {
                // Sticky failure: keep draining so blocked producers
                // are released, but nothing pretends to be logged.
                st.discardedAfterError.fetch_add(
                    batch.size(), std::memory_order_relaxed);
            } else {
                buf.clear();
                for (const OpRecord& r : batch) encodeOpRecord(buf, r);
                Status s;
                const auto t0 = Clock::now();
                {
                    std::lock_guard<std::mutex> lk(st.sinkMx);
                    if (ZC_INJECT_FAULT("persist.append")) {
                        s = Status::ioError(
                            "fault injection: induced log append "
                            "failure at site 'persist.append'");
                    } else {
                        s = st.sink->append(buf.data(), buf.size());
                    }
                }
                st.appendNs.fetch_add(elapsedNs(t0),
                                      std::memory_order_relaxed);
                if (!s.isOk()) {
                    st.appendErrors.fetch_add(
                        1, std::memory_order_relaxed);
                    setFailure(st, std::move(s));
                } else {
                    st.appended.fetch_add(batch.size(),
                                          std::memory_order_relaxed);
                    st.appendBytes.fetch_add(
                        buf.size(), std::memory_order_relaxed);
                    // Queue order is seqno order, so the batch tail is
                    // the shard's append high-water mark.
                    st.appendedSeqno.store(batch.back().seqno,
                                           std::memory_order_release);
                    dirty = true;
                }
            }
        }

        const bool stopNow =
            stopping_.load(std::memory_order_acquire) &&
            st.queue.size() == 0;
        bool due = false;
        if (dirty) {
            switch (cfg_.fsync) {
                case FsyncPolicy::Always: due = true; break;
                case FsyncPolicy::Interval:
                    due = stopNow ||
                          Clock::now() - lastSync >=
                              std::chrono::milliseconds(
                                  cfg_.fsyncIntervalMs);
                    break;
                case FsyncPolicy::Never: due = stopNow; break;
            }
        }
        if (due) {
            // Failure is sticky (setFailure inside) — nothing to do
            // with the status here beyond what syncShard recorded.
            Status ignored = syncShard(st, &dirty);
            (void)ignored;
            lastSync = Clock::now();
        }
        if (stopNow) {
            st.writerDone.store(true, std::memory_order_release);
            st.dcv.notify_all();
            return;
        }
        if (batch.empty()) {
            std::unique_lock<std::mutex> lk(st.qmx);
            if (st.queue.size() == 0 &&
                !stopping_.load(std::memory_order_acquire)) {
                st.qcvData.wait_for(lk, kPollTick);
            }
        }
    }
}

// ---- compaction -----------------------------------------------------

void
PersistTier::snapshotLoop()
{
    for (;;) {
        {
            std::unique_lock<std::mutex> lk(smx_);
            scv_.wait_for(lk, std::chrono::milliseconds(50));
        }
        if (stopping_.load(std::memory_order_acquire)) return;
        for (std::uint32_t i = 0; i < shards_.size(); i++) {
            if (shards_[i]->opsSinceSnapshot.load(
                    std::memory_order_relaxed) >= cfg_.snapshotEveryOps) {
                // Failures are counted in snapshotErrors, never fatal:
                // old segments stay and recovery remains correct.
                Status ignored = snapshotShard(i);
                (void)ignored;
            }
        }
    }
}

Status
PersistTier::snapshotShard(std::uint32_t shard)
{
    ShardState& st = *shards_[shard];
    if (!snapshotFn_) {
        return Status::internal("persist: no snapshot source set");
    }
    const auto t0 = Clock::now();

    // 1. Rotate first: seal the current segment (full fsync — every
    //    byte in it must be durable before the snapshot supersedes it)
    //    and swing the writer to a fresh one. Every record in the old
    //    segments was sequenced before the capture below, hence
    //    seqno <= watermark, hence covered by the snapshot — that is
    //    the whole compaction-safety argument.
    {
        std::lock_guard<std::mutex> lk(st.sinkMx);
        if (Status s = st.sink->sync(/*dataOnly=*/false); !s.isOk()) {
            st.snapshotErrors.fetch_add(1, std::memory_order_relaxed);
            return s;
        }
        const std::uint64_t next = st.segment + 1;
        auto sink_or = backend_->openAppend(segmentName(shard, next));
        if (!sink_or) {
            st.snapshotErrors.fetch_add(1, std::memory_order_relaxed);
            return sink_or.status();
        }
        st.sink = std::move(*sink_or);
        st.segment = next;
    }

    // 2. Capture: the callback takes the shard lock, reads the
    //    watermark, and enumerates live entries under that one lock.
    SnapshotData snap = snapshotFn_(shard);
    st.opsSinceSnapshot.store(0, std::memory_order_relaxed);

    // 3. Publish atomically (tmp + fsync + rename). On failure the old
    //    segments stay — recovery is still exactly correct, just
    //    slower.
    const std::vector<std::uint8_t> blob = encodeSnapshot(shard, snap);
    Status s;
    if (ZC_INJECT_FAULT("persist.snapshot")) {
        s = Status::ioError(
            "fault injection: induced snapshot publish failure at site "
            "'persist.snapshot'");
    } else {
        s = backend_->atomicWrite(snapName(shard), blob.data(),
                                  blob.size());
    }
    st.snapshotNs.fetch_add(elapsedNs(t0), std::memory_order_relaxed);
    if (!s.isOk()) {
        st.snapshotErrors.fetch_add(1, std::memory_order_relaxed);
        return s;
    }
    st.snapshots.fetch_add(1, std::memory_order_relaxed);
    st.snapshotRecords.fetch_add(snap.entries.size(),
                                 std::memory_order_relaxed);

    // 4. Truncate the log behind: every older segment is covered.
    auto segs_or = listSegments(shard);
    if (!segs_or) return segs_or.status();
    std::uint64_t current;
    {
        std::lock_guard<std::mutex> lk(st.sinkMx);
        current = st.segment;
    }
    for (const auto& [num, name] : *segs_or) {
        if (num >= current) continue;
        if (Status rs = backend_->remove(name); !rs.isOk()) return rs;
    }
    return Status::ok();
}

Status
PersistTier::snapshotNow()
{
    if (joined_) {
        return Status::invalidArgument(
            "persist: snapshotNow() needs a started tier");
    }
    for (std::uint32_t i = 0; i < shards_.size(); i++) {
        if (Status s = snapshotShard(i); !s.isOk()) return s;
    }
    return Status::ok();
}

// ---- recovery -------------------------------------------------------

Expected<RecoveryReport>
PersistTier::recover(const ReplayTarget& target)
{
    if (!joined_ || recovered_) {
        return Status::invalidArgument(
            "persist: recover() must run exactly once, before start()");
    }
    if (!target.applyPut || !target.applyErase) {
        return Status::invalidArgument(
            "persist: recover() needs both replay callbacks");
    }
    if (ZC_INJECT_FAULT("persist.recover")) {
        return Status::ioError(
            "fault injection: induced recovery failure at site "
            "'persist.recover'");
    }

    RecoveryReport report;
    for (std::uint32_t si = 0;
         si < static_cast<std::uint32_t>(shards_.size()); si++) {
        ShardState& st = *shards_[si];
        ShardRecovery sr;
        sr.shard = si;

        // Snapshot first. It was published atomically, so a snapshot
        // that fails to decode is real corruption (bit rot, truncated
        // copy), not a torn write — a hard failure, never a silent
        // partial restore.
        if (backend_->exists(snapName(si))) {
            auto data_or = backend_->readAll(snapName(si));
            if (!data_or) return data_or.status();
            auto snap_or = decodeSnapshot(data_or->data(),
                                          data_or->size(), si);
            if (!snap_or) {
                return Status::corruption(
                    "persist '" + backend_->root() + "/" + snapName(si) +
                    "': " + snap_or.status().message());
            }
            for (const auto& [key, value] : snap_or->entries) {
                target.applyPut(si, key, value);
            }
            sr.snapshotLoaded = true;
            sr.snapshotRecords = snap_or->entries.size();
            sr.snapshotWatermark = snap_or->watermark;
        }
        const std::uint64_t watermark = sr.snapshotWatermark;
        std::uint64_t highWater = watermark;

        auto segs_or = listSegments(si);
        if (!segs_or) return segs_or.status();
        const auto& segs = *segs_or;
        sr.logSegments = segs.size();

        std::uint64_t prev = 0;
        bool salvaged = false;
        std::uint64_t lastSegment = 0;
        for (std::size_t k = 0; k < segs.size(); k++) {
            const auto& [num, name] = segs[k];
            if (salvaged) {
                // Once a tail is cut, later segments would append
                // records out of order behind it — drop them so fresh
                // appends resume cleanly from the salvaged point.
                auto data_or = backend_->readAll(name);
                if (data_or) sr.salvagedBytes += data_or->size();
                if (Status s = backend_->remove(name); !s.isOk()) {
                    return s;
                }
                continue;
            }
            lastSegment = num;
            auto data_or = backend_->readAll(name);
            if (!data_or) return data_or.status();
            const std::vector<std::uint8_t>& data = *data_or;
            std::size_t off = 0;
            while (off < data.size()) {
                auto rec_or =
                    decodeOpRecord(data.data() + off, data.size() - off);
                Status bad;
                if (!rec_or) {
                    bad = rec_or.status();
                } else if (prev != 0 && rec_or->seqno <= prev) {
                    bad = Status::corruption(
                        "seqno " + std::to_string(rec_or->seqno) +
                        " not after " + std::to_string(prev));
                }
                if (!bad.isOk()) {
                    // Journal salvage rule: keep the clean prefix,
                    // truncate the damaged tail, warn with the offset.
                    std::string warn =
                        "persist '" + backend_->root() + "/" + name +
                        "': record at byte offset " +
                        std::to_string(off) + ": " + bad.message() +
                        "; salvaged " + std::to_string(sr.logRecords) +
                        " record(s), truncating to " +
                        std::to_string(off) + " bytes";
                    std::fprintf(stderr, "warning: %s\n", warn.c_str());
                    sr.warnings.push_back(std::move(warn));
                    if (Status s = backend_->truncateTo(name, off);
                        !s.isOk()) {
                        return s;
                    }
                    sr.salvagedBytes += data.size() - off;
                    salvaged = true;
                    break;
                }
                const OpRecord& r = *rec_or;
                if (prev != 0 && r.seqno > prev + 1) {
                    // Backpressure=drop evidence: a seqno was consumed
                    // but its record never reached the log.
                    sr.gaps.push_back(SeqnoGap{num, off, prev, r.seqno});
                    sr.droppedRecords += r.seqno - prev - 1;
                }
                prev = r.seqno;
                sr.logRecords++;
                sr.validBytes += kOpRecordSize;
                if (r.seqno > highWater) highWater = r.seqno;
                if (r.seqno <= watermark) {
                    sr.skipped++; // the snapshot already covers it
                } else if (r.kind == OpKind::Put) {
                    target.applyPut(si, r.key, r.value);
                    sr.replayed++;
                } else {
                    // Erase and Evict both replay as removals: an
                    // evicted key must not resurrect.
                    target.applyErase(si, r.key);
                    sr.replayed++;
                }
                off += kOpRecordSize;
            }
        }

        sr.highWater = highWater;
        st.lastSeqno.store(highWater, std::memory_order_relaxed);
        st.appendedSeqno.store(highWater, std::memory_order_relaxed);
        st.durableSeqno.store(highWater, std::memory_order_relaxed);
        st.segment = segs.empty() ? 0 : lastSegment;
        report.shards.push_back(std::move(sr));
    }
    recovered_ = true;
    return report;
}

// ---- introspection --------------------------------------------------

std::uint32_t
PersistTier::shardCount() const
{
    return static_cast<std::uint32_t>(shards_.size());
}

PersistShardCounters
PersistTier::counters(std::uint32_t shard) const
{
    const ShardState& st = *shards_[shard];
    PersistShardCounters c;
    c.enqueued = st.queue.pushed();
    c.dropped = st.queue.dropped();
    c.blocked = st.blocked.load(std::memory_order_relaxed);
    c.appended = st.appended.load(std::memory_order_relaxed);
    c.appendBytes = st.appendBytes.load(std::memory_order_relaxed);
    c.fsyncs = st.fsyncs.load(std::memory_order_relaxed);
    c.snapshots = st.snapshots.load(std::memory_order_relaxed);
    c.snapshotRecords =
        st.snapshotRecords.load(std::memory_order_relaxed);
    c.appendErrors = st.appendErrors.load(std::memory_order_relaxed);
    c.fsyncErrors = st.fsyncErrors.load(std::memory_order_relaxed);
    c.snapshotErrors =
        st.snapshotErrors.load(std::memory_order_relaxed);
    c.discardedAfterError =
        st.discardedAfterError.load(std::memory_order_relaxed);
    c.appendNs = st.appendNs.load(std::memory_order_relaxed);
    c.fsyncNs = st.fsyncNs.load(std::memory_order_relaxed);
    c.snapshotNs = st.snapshotNs.load(std::memory_order_relaxed);
    c.lastSeqno = st.lastSeqno.load(std::memory_order_relaxed);
    c.durableSeqno = st.durableSeqno.load(std::memory_order_relaxed);
    c.queueDepth = st.queue.size();
    return c;
}

void
PersistTier::registerStats(StatGroup& g) const
{
    g.addConst("data_dir", "durability tier data directory",
               JsonValue(backend_->root()));
    g.addConst("fsync", "fsync policy",
               JsonValue(std::string(fsyncPolicyName(cfg_.fsync))));
    g.addConst(
        "backpressure", "full-queue policy",
        JsonValue(std::string(backpressureName(cfg_.backpressure))));
    g.addConst("queue_cap", "per-shard op queue capacity",
               JsonValue(std::uint64_t{cfg_.queueCap}));
    g.addConst("snapshot_every_ops",
               "ops between compaction snapshots (0 = off)",
               JsonValue(cfg_.snapshotEveryOps));

    auto add = [this, &g](const char* name, const char* desc,
                          std::uint64_t PersistShardCounters::*m) {
        g.addCounter(name, desc, [this, m] {
            std::uint64_t t = 0;
            for (std::uint32_t i = 0; i < shardCount(); i++) {
                t += counters(i).*m;
            }
            return t;
        });
    };
    add("enqueued", "op records accepted into persist queues",
        &PersistShardCounters::enqueued);
    add("dropped", "op records dropped by backpressure=drop",
        &PersistShardCounters::dropped);
    add("blocked", "producer stalls under backpressure=block",
        &PersistShardCounters::blocked);
    add("appended", "op records written to shard logs",
        &PersistShardCounters::appended);
    add("append_bytes", "log bytes appended",
        &PersistShardCounters::appendBytes);
    add("fsyncs", "log durability points",
        &PersistShardCounters::fsyncs);
    add("snapshots", "compaction snapshots published",
        &PersistShardCounters::snapshots);
    add("snapshot_records", "entries captured across snapshots",
        &PersistShardCounters::snapshotRecords);
    add("append_errors", "failed log appends",
        &PersistShardCounters::appendErrors);
    add("fsync_errors", "failed log fsyncs",
        &PersistShardCounters::fsyncErrors);
    add("snapshot_errors", "failed snapshot publishes",
        &PersistShardCounters::snapshotErrors);
    add("discarded_after_error",
        "records drained after a sticky writer failure",
        &PersistShardCounters::discardedAfterError);

    StatGroup& ph =
        g.group("phase", "writer-thread phase time attribution");
    auto addPhase = [this, &ph](const char* name, const char* desc,
                                std::uint64_t PersistShardCounters::*m) {
        ph.addCounter(name, desc, [this, m] {
            std::uint64_t t = 0;
            for (std::uint32_t i = 0; i < shardCount(); i++) {
                t += counters(i).*m;
            }
            return t;
        });
    };
    addPhase("append_ns", "time in log append",
             &PersistShardCounters::appendNs);
    addPhase("fsync_ns", "time in fsync/fdatasync",
             &PersistShardCounters::fsyncNs);
    addPhase("snapshot_ns", "time in snapshot capture+publish",
             &PersistShardCounters::snapshotNs);
}

} // namespace zc::persist
