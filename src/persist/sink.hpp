/**
 * @file
 * Pluggable byte-sink layer for the zkv durability tier
 * (docs/durability.md).
 *
 * The writer threads and the recovery path never touch the filesystem
 * directly; they speak two small interfaces:
 *
 *  - `Sink`: one append-only byte stream (a shard's op-log segment)
 *    with an explicit durability point (`sync`).
 *  - `SinkBackend`: a namespace of named objects — open-for-append,
 *    read, atomic whole-object replace (snapshots), list, remove.
 *
 * `FileSink`/`FileBackend` are the first implementations: plain files
 * under a data directory, `fsync` or `fdatasync` per the configured
 * policy, snapshots written as `<name>.tmp` + fsync + rename + parent
 * directory fsync so a crash never leaves a half-written snapshot
 * under the live name. The interface split is what lets a remote
 * backend (object store, replicated log) slot in later without
 * touching the writer or recovery logic.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace zc::persist {

/** One append-only byte stream with an explicit durability point. */
class Sink
{
  public:
    virtual ~Sink() = default;

    /** Append @p len bytes; buffered until sync(). */
    virtual Status append(const void* data, std::size_t len) = 0;

    /**
     * Make every appended byte durable. @p dataOnly permits fdatasync
     * (skip the inode mtime update — the fsync/fdatasync policy knob).
     */
    virtual Status sync(bool dataOnly) = 0;

    /** Bytes appended so far (resumes from existing size on reopen). */
    virtual std::uint64_t size() const = 0;

    /** Name within the backend (for error messages). */
    virtual const std::string& name() const = 0;
};

/** A namespace of named durable objects (one zkv data directory). */
class SinkBackend
{
  public:
    virtual ~SinkBackend() = default;

    /** Open @p name for appending, creating it if absent. */
    virtual Expected<std::unique_ptr<Sink>>
    openAppend(const std::string& name) = 0;

    /** Whole contents of @p name; NotFound when absent. */
    virtual Expected<std::vector<std::uint8_t>>
    readAll(const std::string& name) = 0;

    virtual bool exists(const std::string& name) = 0;

    /**
     * Replace @p name with @p len bytes atomically: readers see either
     * the old object or the complete new one, never a torn middle,
     * even across a crash. Durable on return.
     */
    virtual Status atomicWrite(const std::string& name, const void* data,
                               std::size_t len) = 0;

    /** Cut @p name down to @p size bytes (torn-tail salvage). */
    virtual Status truncateTo(const std::string& name,
                              std::uint64_t size) = 0;

    virtual Status remove(const std::string& name) = 0;

    /** Names starting with @p prefix, lexicographically sorted. */
    virtual Expected<std::vector<std::string>>
    list(const std::string& prefix) = 0;

    /** Human-readable location (the data directory path). */
    virtual const std::string& root() const = 0;
};

class FileSink final : public Sink
{
  public:
    ~FileSink() override;

    static Expected<std::unique_ptr<FileSink>>
    open(const std::string& path);

    Status append(const void* data, std::size_t len) override;
    Status sync(bool dataOnly) override;
    std::uint64_t size() const override { return size_; }
    const std::string& name() const override { return path_; }

  private:
    FileSink(int fd, std::string path, std::uint64_t size)
        : fd_(fd), path_(std::move(path)), size_(size)
    {
    }

    int fd_ = -1;
    std::string path_;
    std::uint64_t size_ = 0;
};

class FileBackend final : public SinkBackend
{
  public:
    /** Open (creating directories as needed) the data dir @p root. */
    static Expected<std::unique_ptr<FileBackend>>
    open(const std::string& root);

    Expected<std::unique_ptr<Sink>>
    openAppend(const std::string& name) override;
    Expected<std::vector<std::uint8_t>>
    readAll(const std::string& name) override;
    bool exists(const std::string& name) override;
    Status atomicWrite(const std::string& name, const void* data,
                       std::size_t len) override;
    Status truncateTo(const std::string& name,
                      std::uint64_t size) override;
    Status remove(const std::string& name) override;
    Expected<std::vector<std::string>>
    list(const std::string& prefix) override;
    const std::string& root() const override { return root_; }

  private:
    explicit FileBackend(std::string root) : root_(std::move(root)) {}

    std::string path(const std::string& name) const;

    std::string root_;
};

} // namespace zc::persist
