/**
 * @file
 * PersistTier: the per-shard write-behind durability tier for ZkvStore
 * (docs/durability.md).
 *
 * One writer thread per shard drains a bounded SPSC queue of OpRecords
 * (enqueued under the shard lock, so queue order == apply order ==
 * disk order) into an append-only CRC-framed log segment, fsyncing per
 * the configured policy. A full queue applies *explicit* backpressure:
 * `block` stalls the producer until space frees, `drop` counts the
 * record and leaves a seqno gap as on-disk evidence — never a silent
 * loss.
 *
 * Compaction runs on a dedicated snapshot thread: rotate the log
 * segment *first*, then capture the shard image (under the shard lock,
 * via the store's walk-free iteration API), then atomically publish
 * the snapshot and delete the old segments. Rotation-before-capture is
 * the correctness argument: every record in an old segment was
 * assigned its seqno before the capture, hence seqno <= watermark,
 * hence covered by the snapshot.
 *
 * The snapshot thread is deliberately NOT the writer thread: a
 * producer blocked on a full queue holds the shard lock that the
 * capture needs, and only the writer can drain that queue — capture on
 * the writer would deadlock. Lock order: producers take shard lock
 * then queue mutex; the writer takes queue mutex or sink mutex (never
 * a shard lock); the snapshot thread takes the sink mutex and the
 * shard lock strictly one at a time, never nested.
 *
 * Recovery (`recover`) replays snapshot-then-log per shard, salvages a
 * torn or corrupt tail with truncate+warn exactly like
 * runner/journal.cpp, reports seqno gaps with exact byte offsets, and
 * returns an Expected<RecoveryReport> the caller can dump as JSON.
 *
 * Fault sites (docs/robustness.md): persist.append, persist.fsync,
 * persist.snapshot, persist.recover.
 */

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hpp"
#include "common/stats_registry.hpp"
#include "common/status.hpp"
#include "persist/oplog.hpp"
#include "persist/sink.hpp"
#include "persist/snapshot.hpp"

namespace zc::persist {

/** When does an appended record become durable? */
enum class FsyncPolicy {
    Always,   ///< group-commit fsync per drained batch; acks wait
    Interval, ///< fsync at most every fsyncIntervalMs; bounded loss
    Never,    ///< OS page cache decides; fastest, weakest
};

/** What happens when a shard's persist queue is full? */
enum class Backpressure {
    Block, ///< stall the producer (under the shard lock) until space
    Drop,  ///< count the drop; the seqno gap is the on-disk evidence
};

const char* fsyncPolicyName(FsyncPolicy p);
Expected<FsyncPolicy> parseFsyncPolicy(const std::string& s);
const char* backpressureName(Backpressure b);
Expected<Backpressure> parseBackpressure(const std::string& s);

struct PersistConfig
{
    /** Data directory; empty = persistence disabled (the default). */
    std::string dataDir;

    FsyncPolicy fsync = FsyncPolicy::Always;
    std::uint32_t fsyncIntervalMs = 50; ///< Interval policy only

    /** Snapshot+compact a shard after this many logged ops; 0 = off. */
    std::uint64_t snapshotEveryOps = 0;

    std::size_t queueCap = 4096; ///< per-shard op queue capacity
    Backpressure backpressure = Backpressure::Block;

    /** fdatasync instead of fsync for log appends (snapshot publish
     *  always uses full fsync + rename). */
    bool dataOnlySync = true;

    bool enabled() const { return !dataDir.empty(); }
    Status validate() const;
};

/** Point-in-time snapshot of one shard's persist counters. */
struct PersistShardCounters
{
    std::uint64_t enqueued = 0;  ///< records accepted into the queue
    std::uint64_t dropped = 0;   ///< records rejected (backpressure=drop)
    std::uint64_t blocked = 0;   ///< producer stalls (backpressure=block)
    std::uint64_t appended = 0;  ///< records written to the log
    std::uint64_t appendBytes = 0;
    std::uint64_t fsyncs = 0;
    std::uint64_t snapshots = 0;
    std::uint64_t snapshotRecords = 0;
    std::uint64_t appendErrors = 0;
    std::uint64_t fsyncErrors = 0;
    std::uint64_t snapshotErrors = 0;
    std::uint64_t discardedAfterError = 0; ///< drained post-failure
    std::uint64_t appendNs = 0;   ///< writer phase: log append
    std::uint64_t fsyncNs = 0;    ///< writer phase: durability point
    std::uint64_t snapshotNs = 0; ///< writer phase: snapshot publish
    std::uint64_t lastSeqno = 0;
    std::uint64_t durableSeqno = 0;
    std::uint64_t queueDepth = 0;
};

/** One seqno discontinuity found at recovery (drop evidence). */
struct SeqnoGap
{
    std::uint64_t segment = 0;    ///< log segment number
    std::uint64_t byteOffset = 0; ///< offset of the record after the gap
    std::uint64_t prevSeqno = 0;
    std::uint64_t nextSeqno = 0;
};

struct ShardRecovery
{
    std::uint32_t shard = 0;
    bool snapshotLoaded = false;
    std::uint64_t snapshotRecords = 0;
    std::uint64_t snapshotWatermark = 0;
    std::uint64_t logSegments = 0;
    std::uint64_t logRecords = 0; ///< valid records decoded
    std::uint64_t replayed = 0;   ///< applied (seqno > watermark)
    std::uint64_t skipped = 0;    ///< covered by the snapshot
    std::uint64_t validBytes = 0;
    std::uint64_t salvagedBytes = 0; ///< truncated torn/corrupt tail
    std::uint64_t droppedRecords = 0; ///< total width of seqno gaps
    std::vector<SeqnoGap> gaps;
    std::vector<std::string> warnings;
    std::uint64_t highWater = 0; ///< max seqno seen (resume point)

    JsonValue toJson() const;
};

struct RecoveryReport
{
    std::vector<ShardRecovery> shards;

    std::uint64_t totalReplayed() const;
    std::uint64_t totalSkipped() const;
    std::uint64_t totalSalvagedBytes() const;
    std::uint64_t totalGaps() const;
    std::uint64_t totalDroppedRecords() const;
    JsonValue toJson() const;
};

/** Where recovery replays into (the store's replay-only mutators). */
struct ReplayTarget
{
    std::function<void(std::uint32_t shard, std::uint64_t key,
                       std::uint64_t value)>
        applyPut;
    std::function<void(std::uint32_t shard, std::uint64_t key)> applyErase;
};

class PersistTier
{
  public:
    /**
     * Open (or create) the data directory for a store with @p shards
     * shards and identity string @p identity. A MANIFEST written on
     * first open pins both; reopening with a different store shape is
     * an InvalidArgument refusal (mirroring the sweep journal's
     * fingerprint check), not a silent misreplay.
     */
    static Expected<std::unique_ptr<PersistTier>>
    open(const PersistConfig& cfg, std::uint32_t shards,
         const std::string& identity);

    ~PersistTier();
    PersistTier(const PersistTier&) = delete;
    PersistTier& operator=(const PersistTier&) = delete;

    /**
     * Provide the capture callback used by compaction. Must lock the
     * shard, read `lastSeqno(shard)` for the watermark, and enumerate
     * live entries — all under that one lock.
     */
    void setSnapshotSource(
        std::function<SnapshotData(std::uint32_t shard)> fn);

    /**
     * Replay snapshot-then-log into @p target. Must run before
     * start(); a fresh directory yields an all-zero report. Torn or
     * corrupt log tails are salvaged (truncate + stderr warning with
     * the byte offset); a corrupt *snapshot* is a hard structured
     * failure (snapshots are published atomically, so corruption there
     * is real loss, never a torn write).
     */
    Expected<RecoveryReport> recover(const ReplayTarget& target);

    /** Launch writer (and, if configured, snapshot) threads. */
    Status start();

    /**
     * Drain queues, final-sync every shard, join all threads. Returns
     * the first sticky writer error, if any. Idempotent; the dtor
     * calls it.
     */
    Status stop();

    /**
     * Log one mutation for @p shard. Must be called under that shard's
     * lock (that is what makes disk order == apply order). Returns the
     * assigned seqno, or 0 when the tier is not running. A seqno is
     * consumed even when the record is dropped — the gap is the
     * on-disk evidence.
     */
    std::uint64_t logPut(std::uint32_t shard, std::uint64_t key,
                         std::uint64_t value);
    std::uint64_t logErase(std::uint32_t shard, std::uint64_t key);
    std::uint64_t logEvict(std::uint32_t shard, std::uint64_t key);

    /**
     * Block until @p seqno is fsync-durable on @p shard. No-op unless
     * fsync=always (acks do not imply durability under the other
     * policies) or when @p seqno is 0. Returns the shard's sticky
     * writer error if durability can no longer be reached.
     */
    Status waitDurable(std::uint32_t shard, std::uint64_t seqno);

    /** True when acked writes are fsync-durable (fsync=always). */
    bool ackWaitsForDurability() const
    {
        return cfg_.fsync == FsyncPolicy::Always;
    }

    /** Last seqno assigned to @p shard; callers synchronize via the
     *  shard lock (the snapshot watermark read). */
    std::uint64_t lastSeqno(std::uint32_t shard) const;

    /**
     * Synchronously snapshot+compact every shard on the calling
     * thread (deterministic tests; the periodic thread uses the same
     * path). Requires a snapshot source and a started tier.
     */
    Status snapshotNow();

    PersistShardCounters counters(std::uint32_t shard) const;
    std::uint32_t shardCount() const;
    const PersistConfig& config() const { return cfg_; }

    /** First sticky writer error across shards (Ok when healthy). */
    Status error() const;

    /** Mount persist counters under @p g (docs/durability.md). */
    void registerStats(StatGroup& g) const;

  private:
    struct ShardState;

    PersistTier(PersistConfig cfg, std::unique_ptr<SinkBackend> backend,
                std::uint32_t shards);

    std::string segmentName(std::uint32_t shard,
                            std::uint64_t segment) const;
    std::string snapName(std::uint32_t shard) const;

    void writerLoop(std::uint32_t shard);
    Status syncShard(ShardState& st, bool* dirty);
    void setFailure(ShardState& st, Status s);
    void snapshotLoop();
    Status snapshotShard(std::uint32_t shard);
    std::uint64_t logOp(std::uint32_t shard, OpKind kind,
                        std::uint64_t key, std::uint64_t value);
    Expected<std::vector<std::pair<std::uint64_t, std::string>>>
    listSegments(std::uint32_t shard);

    PersistConfig cfg_;
    std::unique_ptr<SinkBackend> backend_;
    std::vector<std::unique_ptr<ShardState>> shards_;
    std::function<SnapshotData(std::uint32_t)> snapshotFn_;
    bool recovered_ = false;
    std::atomic<bool> active_{false};
    std::atomic<bool> stopping_{false};
    bool joined_ = true; ///< threads not running (start flips to false)

    std::thread snapThread_;
    std::mutex smx_;
    std::condition_variable scv_;
};

} // namespace zc::persist
