/**
 * @file
 * CRC-32 (IEEE 802.3, polynomial 0xEDB88320), the checksum guarding
 * trace-file payloads (trace/trace_io.cpp) and sweep-journal records
 * (runner/journal.cpp). Table-driven, incremental-friendly: feed
 * chunks through Crc32::update and call value() at the end.
 */

#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace zc {

class Crc32
{
  public:
    /** One-shot convenience over a contiguous buffer. */
    static std::uint32_t
    of(const void* data, std::size_t len)
    {
        Crc32 c;
        c.update(data, len);
        return c.value();
    }

    static std::uint32_t
    of(std::string_view s)
    {
        return of(s.data(), s.size());
    }

    void
    update(const void* data, std::size_t len)
    {
        const auto* p = static_cast<const std::uint8_t*>(data);
        std::uint32_t crc = state_;
        for (std::size_t i = 0; i < len; i++) {
            crc = table()[(crc ^ p[i]) & 0xff] ^ (crc >> 8);
        }
        state_ = crc;
    }

    /** The finalized checksum of everything fed so far. */
    std::uint32_t value() const { return state_ ^ 0xffffffffu; }

    void reset() { state_ = 0xffffffffu; }

  private:
    static const std::array<std::uint32_t, 256>&
    table()
    {
        static const std::array<std::uint32_t, 256> t = [] {
            std::array<std::uint32_t, 256> out{};
            for (std::uint32_t i = 0; i < 256; i++) {
                std::uint32_t c = i;
                for (int k = 0; k < 8; k++) {
                    c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
                }
                out[i] = c;
            }
            return out;
        }();
        return t;
    }

    std::uint32_t state_ = 0xffffffffu;
};

} // namespace zc
