/**
 * @file
 * Simulator throughput telemetry: wall-clock, simulated-work totals and
 * peak RSS, surfaced as first-class counters so regressions are visible
 * in every report instead of only in someone's terminal scrollback.
 *
 * A PerfMeter starts its clock at construction, harvests simulated-work
 * totals (instructions, L2 accesses, walk candidates) from the runs'
 * stats trees, and registers throughput counters into a StatsRegistry
 * StatGroup. Bench drivers attach its dump as the top-level "perf"
 * block of --json reports (bench/bench_util.hpp JsonReport).
 *
 * The block is intentionally *outside* the per-run records: run stats
 * stay byte-identical across --jobs values, journal resumes and
 * machines (the repo's determinism contract), while timing — which can
 * never be — lives in one clearly-marked sidecar. Regression tooling
 * that diffs reports strips "perf" first; the CI perf gate does the
 * opposite and reads only it. See docs/performance.md.
 */

#pragma once

#include <chrono>
#include <cstdint>

#include "common/json.hpp"
#include "common/log.hpp"
#include "common/stats_registry.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace zc {

/** Peak resident set size of this process in bytes (0 if unknown). */
inline std::uint64_t
peakRssBytes()
{
#if defined(__unix__) || defined(__APPLE__)
    struct rusage ru
    {
    };
    if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
#if defined(__APPLE__)
    return static_cast<std::uint64_t>(ru.ru_maxrss); // bytes on Darwin
#else
    return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024u; // KiB on Linux
#endif
#else
    return 0;
#endif
}

class PerfMeter
{
  public:
    PerfMeter() : start_(std::chrono::steady_clock::now()) {}

    /**
     * Accumulate one run's simulated work from its stats tree. Two
     * shapes are understood: full CMP dumps (system.instructions and
     * system.l2.accesses — RunResult::stats) and array-level ablation
     * dumps (summary.accesses). Walk candidates are gathered by
     * recursively summing every "walk" group's candidates_total, so
     * any bank nesting works. Trees with neither shape contribute
     * nothing — the meter still reports wall time and RSS.
     */
    void
    addRun(const JsonValue& stats)
    {
        runs_++;
        const JsonValue* sys = stats.find("system");
        if (sys && sys->isObject()) {
            if (const JsonValue* v = sys->find("instructions");
                v && v->kind() == JsonValue::Kind::U64) {
                instructions_ += v->asU64();
            }
            const JsonValue* l2 = sys->find("l2");
            if (const JsonValue* v = l2 && l2->isObject()
                                         ? l2->find("accesses")
                                         : nullptr;
                v && v->kind() == JsonValue::Kind::U64) {
                accesses_ += v->asU64();
            }
        } else if (const JsonValue* summary = stats.find("summary");
                   summary && summary->isObject()) {
            if (const JsonValue* v = summary->find("accesses");
                v && v->kind() == JsonValue::Kind::U64) {
                accesses_ += v->asU64();
            }
        }
        walkCandidates_ += sumWalkCandidates(stats);
    }

    /** Accumulate raw totals directly (drivers without a stats tree). */
    void
    addCounts(std::uint64_t instructions, std::uint64_t accesses,
              std::uint64_t walk_candidates)
    {
        instructions_ += instructions;
        accesses_ += accesses;
        walkCandidates_ += walk_candidates;
    }

    double
    elapsedSeconds() const
    {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start_)
            .count();
    }

    std::uint64_t runs() const { return runs_; }
    std::uint64_t instructions() const { return instructions_; }
    std::uint64_t accesses() const { return accesses_; }
    std::uint64_t walkCandidates() const { return walkCandidates_; }

    double
    accessesPerSec() const
    {
        double s = elapsedSeconds();
        return s > 0 ? static_cast<double>(accesses_) / s : 0.0;
    }

    /**
     * Register the throughput counters into @p g. Values are read at
     * dump time, so register early and dump once at exit.
     */
    void
    registerStats(StatGroup& g) const
    {
        g.addCounter("runs", "experiment runs metered",
                     [this] { return runs_; });
        g.addCounter("instructions_total", "simulated instructions",
                     [this] { return instructions_; });
        g.addCounter("sim_accesses_total", "simulated L2 accesses",
                     [this] { return accesses_; });
        g.addCounter("walk_candidates_total",
                     "replacement candidates examined",
                     [this] { return walkCandidates_; });
        g.addScalar("wall_seconds", "wall-clock time since meter start",
                    [this] { return elapsedSeconds(); });
        g.addScalar("instructions_per_sec",
                    "simulated instructions per wall second", [this] {
                        double s = elapsedSeconds();
                        return s > 0
                                   ? static_cast<double>(instructions_) / s
                                   : 0.0;
                    });
        g.addScalar("sim_accesses_per_sec",
                    "simulated L2 accesses per wall second",
                    [this] { return accessesPerSec(); });
        g.addScalar("walk_candidates_per_sec",
                    "walk candidates examined per wall second", [this] {
                        double s = elapsedSeconds();
                        return s > 0 ? static_cast<double>(walkCandidates_) /
                                           s
                                     : 0.0;
                    });
        g.addCounter("peak_rss_bytes", "peak resident set size",
                     [] { return peakRssBytes(); });
    }

    /** The "perf" block: a one-shot registry dump of registerStats(). */
    JsonValue
    toJson() const
    {
        StatsRegistry reg;
        registerStats(reg.root().group("perf", "throughput telemetry"));
        JsonValue doc = reg.toJson();
        const JsonValue* p = doc.find("perf");
        zc_assert(p != nullptr);
        return *p;
    }

  private:
    /** Sum of "walk" groups' candidates_total anywhere under @p v. */
    static std::uint64_t
    sumWalkCandidates(const JsonValue& v)
    {
        if (!v.isObject()) return 0;
        std::uint64_t total = 0;
        for (const auto& [key, child] : v.obj()) {
            if (!child.isObject()) continue;
            if (key == "walk") {
                if (const JsonValue* c = child.find("candidates_total");
                    c && c->kind() == JsonValue::Kind::U64) {
                    total += c->asU64();
                }
                continue;
            }
            total += sumWalkCandidates(child);
        }
        return total;
    }

    std::chrono::steady_clock::time_point start_;
    std::uint64_t runs_ = 0;
    std::uint64_t instructions_ = 0;
    std::uint64_t accesses_ = 0;
    std::uint64_t walkCandidates_ = 0;
};

} // namespace zc
