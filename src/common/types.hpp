/**
 * @file
 * Fundamental type aliases shared by every module.
 *
 * All addresses handled by the library are *line* addresses (byte address
 * >> log2(lineBytes)) unless a name says otherwise. Keeping a single
 * canonical address width makes hash functions and arrays uniform.
 */

#pragma once

#include <cstddef>
#include <cstdint>

namespace zc {

/** Line (or byte, where documented) address. */
using Addr = std::uint64_t;

/** Cycle count / timestamp. */
using Cycle = std::uint64_t;

/**
 * Index of a block inside a cache array.
 *
 * Arrays expose a flat position space: position = way * linesPerWay + line
 * for skewed designs, or set * ways + way for set-associative designs. The
 * exact mapping is private to each array; positions are opaque handles to
 * everyone else.
 */
using BlockPos = std::uint32_t;

/** Sentinel for "no position" (e.g. miss on lookup). */
inline constexpr BlockPos kInvalidPos = static_cast<BlockPos>(-1);

/** Sentinel line address used for invalid/empty tags. */
inline constexpr Addr kInvalidAddr = static_cast<Addr>(-1);

} // namespace zc
