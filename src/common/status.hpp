/**
 * @file
 * Structured, recoverable errors: zc::Status and zc::Expected<T>.
 *
 * The repo's error-handling contract (docs/robustness.md):
 *
 *  - zc_panic  — a library invariant was violated (a bug). Aborts.
 *  - zc_fatal  — reserved for truly unrecoverable process state.
 *  - Status / Expected<T> — everything a caller could plausibly
 *    recover from: malformed trace files, invalid configurations,
 *    unknown factory names, journal corruption, job timeouts. These
 *    carry a machine-checkable code plus a precise human diagnostic
 *    (field name, file path, byte offset), so a sweep can record the
 *    failure and keep going instead of killing hours of grid points.
 *
 * Deep call stacks (runExperiment -> makeArray -> ...) propagate a
 * Status by throwing StatusError, which the sweep engine's per-job
 * fault isolation (runner/sweep.hpp) catches and converts into a
 * GridOutcome record. Leaf APIs (TraceIo, parse helpers, validate())
 * return Status / Expected directly.
 */

#pragma once

#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

#include "common/log.hpp"

namespace zc {

/** Machine-checkable failure category. */
enum class ErrorCode {
    Ok = 0,
    InvalidArgument, ///< caller passed an impossible configuration
    NotFound,        ///< unknown name (workload, policy, file, ...)
    IoError,         ///< open/read/write/sync failure
    Corruption,      ///< integrity check failed (CRC, framing, magic)
    Truncated,       ///< input ends before its declared length
    Unsupported,     ///< recognized but unhandled (e.g. future version)
    ResourceExhausted, ///< allocation or capacity limit hit
    Timeout,         ///< watchdog cancelled the operation
    Internal,        ///< "should not happen" reachable from user input
};

inline const char*
errorCodeName(ErrorCode c)
{
    switch (c) {
      case ErrorCode::Ok: return "ok";
      case ErrorCode::InvalidArgument: return "invalid-argument";
      case ErrorCode::NotFound: return "not-found";
      case ErrorCode::IoError: return "io-error";
      case ErrorCode::Corruption: return "corruption";
      case ErrorCode::Truncated: return "truncated";
      case ErrorCode::Unsupported: return "unsupported";
      case ErrorCode::ResourceExhausted: return "resource-exhausted";
      case ErrorCode::Timeout: return "timeout";
      case ErrorCode::Internal: return "internal";
    }
    return "?";
}

/**
 * The result of an operation that can fail recoverably: an ErrorCode
 * plus a complete diagnostic message. Cheap to move, comparable by
 * code. An ok() Status carries no message.
 */
class [[nodiscard]] Status
{
  public:
    Status() = default;

    Status(ErrorCode code, std::string message)
        : code_(code), message_(std::move(message))
    {
    }

    static Status ok() { return Status(); }

    static Status
    invalidArgument(std::string msg)
    {
        return Status(ErrorCode::InvalidArgument, std::move(msg));
    }

    static Status
    notFound(std::string msg)
    {
        return Status(ErrorCode::NotFound, std::move(msg));
    }

    static Status
    ioError(std::string msg)
    {
        return Status(ErrorCode::IoError, std::move(msg));
    }

    static Status
    corruption(std::string msg)
    {
        return Status(ErrorCode::Corruption, std::move(msg));
    }

    static Status
    truncated(std::string msg)
    {
        return Status(ErrorCode::Truncated, std::move(msg));
    }

    static Status
    unsupported(std::string msg)
    {
        return Status(ErrorCode::Unsupported, std::move(msg));
    }

    static Status
    resourceExhausted(std::string msg)
    {
        return Status(ErrorCode::ResourceExhausted, std::move(msg));
    }

    static Status
    timeout(std::string msg)
    {
        return Status(ErrorCode::Timeout, std::move(msg));
    }

    static Status
    internal(std::string msg)
    {
        return Status(ErrorCode::Internal, std::move(msg));
    }

    bool isOk() const { return code_ == ErrorCode::Ok; }
    explicit operator bool() const { return isOk(); }

    ErrorCode code() const { return code_; }
    const std::string& message() const { return message_; }

    /** "code: message" — what diagnostics and GridOutcome errors show. */
    std::string
    str() const
    {
        if (isOk()) return "ok";
        return std::string(errorCodeName(code_)) + ": " + message_;
    }

  private:
    ErrorCode code_ = ErrorCode::Ok;
    std::string message_;
};

/**
 * Exception wrapper carrying a Status through call stacks that cannot
 * thread return values (runExperiment and below). The sweep engine
 * recognizes it: InvalidArgument / NotFound / Unsupported outcomes are
 * permanent (no retry), Timeout marks the point as watchdog-cancelled.
 */
class StatusError : public std::runtime_error
{
  public:
    explicit StatusError(Status status)
        : std::runtime_error(status.str()), status_(std::move(status))
    {
    }

    const Status& status() const { return status_; }
    ErrorCode code() const { return status_.code(); }

  private:
    Status status_;
};

/** Throw StatusError iff @p s is an error; no-op on ok. */
inline void
throwIfError(Status s)
{
    if (!s.isOk()) throw StatusError(std::move(s));
}

/**
 * Either a T or the Status explaining why there is none. The repo's
 * lightweight stand-in for std::expected (C++23).
 */
template <typename T>
class [[nodiscard]] Expected
{
  public:
    Expected(T value) : v_(std::move(value)) {}
    Expected(Status status) : v_(std::move(status))
    {
        zc_assert(!std::get<Status>(v_).isOk());
    }

    bool hasValue() const { return v_.index() == 0; }
    explicit operator bool() const { return hasValue(); }

    /** The value; asserts on error (check first, or use valueOrThrow). */
    T&
    value()
    {
        zc_assert(hasValue());
        return std::get<T>(v_);
    }

    const T&
    value() const
    {
        zc_assert(hasValue());
        return std::get<T>(v_);
    }

    T& operator*() { return value(); }
    const T& operator*() const { return value(); }
    T* operator->() { return &value(); }
    const T* operator->() const { return &value(); }

    /** The error; Status::ok() when a value is present. */
    Status
    status() const
    {
        return hasValue() ? Status::ok() : std::get<Status>(v_);
    }

    /** Move the value out, or throw the carried Status as StatusError. */
    T
    valueOrThrow() &&
    {
        if (!hasValue()) throw StatusError(std::get<Status>(v_));
        return std::move(std::get<T>(v_));
    }

    T
    valueOr(T fallback) &&
    {
        return hasValue() ? std::move(std::get<T>(v_))
                          : std::move(fallback);
    }

  private:
    std::variant<T, Status> v_;
};

} // namespace zc
