/**
 * @file
 * Minimal JSON document model: a tagged value with an order-preserving
 * object representation, a compact/pretty writer, and a small
 * recursive-descent parser.
 *
 * Exists so the stats registry (stats_registry.hpp) can serialize
 * experiment telemetry without an external dependency. Deliberately not
 * a general-purpose JSON library: numbers are stored as either uint64
 * or double, object keys keep insertion order (stat dumps stay
 * deterministic and diffable), and non-finite doubles serialize as
 * null — JSON has no NaN/Inf, and a stats file with silent NaNs is
 * worse than one with explicit holes.
 */

#pragma once

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace zc {

class JsonValue
{
  public:
    using Array = std::vector<JsonValue>;
    /** Order-preserving key/value list; keys are unique by convention. */
    using Object = std::vector<std::pair<std::string, JsonValue>>;

    enum class Kind { Null, Bool, U64, F64, Str, Arr, Obj };

    JsonValue() : v_(nullptr) {}
    JsonValue(std::nullptr_t) : v_(nullptr) {}
    JsonValue(bool b) : v_(b) {}
    JsonValue(std::uint64_t n) : v_(n) {}
    JsonValue(std::uint32_t n) : v_(std::uint64_t{n}) {}
    JsonValue(int n) : v_(std::uint64_t(n < 0 ? 0 : n))
    {
        if (n < 0) v_ = static_cast<double>(n);
    }
    JsonValue(double d) : v_(d) {}
    JsonValue(const char* s) : v_(std::string(s)) {}
    JsonValue(std::string s) : v_(std::move(s)) {}

    static JsonValue object() { return JsonValue(Object{}); }
    static JsonValue array() { return JsonValue(Array{}); }

    Kind
    kind() const
    {
        switch (v_.index()) {
          case 0: return Kind::Null;
          case 1: return Kind::Bool;
          case 2: return Kind::U64;
          case 3: return Kind::F64;
          case 4: return Kind::Str;
          case 5: return Kind::Arr;
          default: return Kind::Obj;
        }
    }

    bool isNull() const { return kind() == Kind::Null; }
    bool isObject() const { return kind() == Kind::Obj; }
    bool isArray() const { return kind() == Kind::Arr; }
    bool isNumber() const
    {
        return kind() == Kind::U64 || kind() == Kind::F64;
    }

    bool asBool() const { return std::get<bool>(v_); }
    std::uint64_t asU64() const { return std::get<std::uint64_t>(v_); }
    const std::string& asString() const { return std::get<std::string>(v_); }

    double
    asDouble() const
    {
        if (kind() == Kind::U64) {
            return static_cast<double>(std::get<std::uint64_t>(v_));
        }
        return std::get<double>(v_);
    }

    Array& arr() { return std::get<Array>(v_); }
    const Array& arr() const { return std::get<Array>(v_); }
    Object& obj() { return std::get<Object>(v_); }
    const Object& obj() const { return std::get<Object>(v_); }

    /** Object member lookup; nullptr when absent (or not an object). */
    const JsonValue*
    find(std::string_view key) const
    {
        if (!isObject()) return nullptr;
        for (const auto& [k, v] : obj()) {
            if (k == key) return &v;
        }
        return nullptr;
    }

    /** Append/overwrite an object member (keeps first-set order). */
    JsonValue&
    set(std::string key, JsonValue value)
    {
        for (auto& [k, v] : obj()) {
            if (k == key) {
                v = std::move(value);
                return v;
            }
        }
        obj().emplace_back(std::move(key), std::move(value));
        return obj().back().second;
    }

    void push(JsonValue value) { arr().push_back(std::move(value)); }

    std::size_t
    size() const
    {
        if (isArray()) return arr().size();
        if (isObject()) return obj().size();
        return 0;
    }

    /** Serialize; indent < 0 means compact single-line. */
    std::string
    str(int indent = -1) const
    {
        std::string out;
        write(out, indent, 0);
        return out;
    }

    /**
     * Parse a complete JSON document (trailing garbage rejected).
     * Returns nullopt on malformed input — callers decide whether that
     * is fatal.
     */
    static std::optional<JsonValue>
    parse(std::string_view text)
    {
        std::size_t pos = 0;
        auto v = parseValue(text, pos);
        if (!v) return std::nullopt;
        skipWs(text, pos);
        if (pos != text.size()) return std::nullopt;
        return v;
    }

  private:
    explicit JsonValue(Array a) : v_(std::move(a)) {}
    explicit JsonValue(Object o) : v_(std::move(o)) {}

    void
    write(std::string& out, int indent, int depth) const
    {
        switch (kind()) {
          case Kind::Null:
            out += "null";
            return;
          case Kind::Bool:
            out += asBool() ? "true" : "false";
            return;
          case Kind::U64: {
            char buf[24];
            std::snprintf(buf, sizeof buf, "%llu",
                          static_cast<unsigned long long>(asU64()));
            out += buf;
            return;
          }
          case Kind::F64: {
            double d = std::get<double>(v_);
            if (!std::isfinite(d)) {
                out += "null";
                return;
            }
            char buf[32];
            std::snprintf(buf, sizeof buf, "%.17g", d);
            out += buf;
            return;
          }
          case Kind::Str:
            writeString(out, asString());
            return;
          case Kind::Arr: {
            out += '[';
            bool first = true;
            for (const auto& v : arr()) {
                if (!first) out += ',';
                first = false;
                newline(out, indent, depth + 1);
                v.write(out, indent, depth + 1);
            }
            if (!arr().empty()) newline(out, indent, depth);
            out += ']';
            return;
          }
          case Kind::Obj: {
            out += '{';
            bool first = true;
            for (const auto& [k, v] : obj()) {
                if (!first) out += ',';
                first = false;
                newline(out, indent, depth + 1);
                writeString(out, k);
                out += indent >= 0 ? ": " : ":";
                v.write(out, indent, depth + 1);
            }
            if (!obj().empty()) newline(out, indent, depth);
            out += '}';
            return;
          }
        }
    }

    static void
    newline(std::string& out, int indent, int depth)
    {
        if (indent < 0) return;
        out += '\n';
        out.append(static_cast<std::size_t>(indent) * depth, ' ');
    }

    static void
    writeString(std::string& out, const std::string& s)
    {
        out += '"';
        for (unsigned char c : s) {
            switch (c) {
              case '"': out += "\\\""; break;
              case '\\': out += "\\\\"; break;
              case '\n': out += "\\n"; break;
              case '\r': out += "\\r"; break;
              case '\t': out += "\\t"; break;
              default:
                if (c < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out += static_cast<char>(c);
                }
            }
        }
        out += '"';
    }

    static void
    skipWs(std::string_view t, std::size_t& p)
    {
        while (p < t.size() && (t[p] == ' ' || t[p] == '\t' ||
                                t[p] == '\n' || t[p] == '\r')) {
            p++;
        }
    }

    static bool
    consume(std::string_view t, std::size_t& p, std::string_view lit)
    {
        if (t.substr(p, lit.size()) != lit) return false;
        p += lit.size();
        return true;
    }

    static std::optional<std::string>
    parseString(std::string_view t, std::size_t& p)
    {
        if (p >= t.size() || t[p] != '"') return std::nullopt;
        p++;
        std::string out;
        while (p < t.size() && t[p] != '"') {
            char c = t[p];
            if (c == '\\') {
                if (p + 1 >= t.size()) return std::nullopt;
                char e = t[p + 1];
                p += 2;
                switch (e) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'n': out += '\n'; break;
                  case 'r': out += '\r'; break;
                  case 't': out += '\t'; break;
                  case 'u': {
                    if (p + 4 > t.size()) return std::nullopt;
                    unsigned cp = 0;
                    for (int i = 0; i < 4; i++) {
                        char h = t[p + static_cast<std::size_t>(i)];
                        cp <<= 4;
                        if (h >= '0' && h <= '9') cp |= unsigned(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            cp |= unsigned(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            cp |= unsigned(h - 'A' + 10);
                        else return std::nullopt;
                    }
                    p += 4;
                    // UTF-8 encode the BMP code point (surrogate pairs
                    // are out of scope for stats files).
                    if (cp < 0x80) {
                        out += static_cast<char>(cp);
                    } else if (cp < 0x800) {
                        out += static_cast<char>(0xc0 | (cp >> 6));
                        out += static_cast<char>(0x80 | (cp & 0x3f));
                    } else {
                        out += static_cast<char>(0xe0 | (cp >> 12));
                        out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
                        out += static_cast<char>(0x80 | (cp & 0x3f));
                    }
                    break;
                  }
                  default: return std::nullopt;
                }
            } else {
                out += c;
                p++;
            }
        }
        if (p >= t.size()) return std::nullopt;
        p++; // closing quote
        return out;
    }

    static std::optional<JsonValue>
    parseNumber(std::string_view t, std::size_t& p)
    {
        std::size_t start = p;
        bool neg = p < t.size() && t[p] == '-';
        if (neg) p++;
        bool integral = true;
        while (p < t.size() &&
               (std::isdigit(static_cast<unsigned char>(t[p])) ||
                t[p] == '.' || t[p] == 'e' || t[p] == 'E' || t[p] == '+' ||
                t[p] == '-')) {
            if (t[p] == '.' || t[p] == 'e' || t[p] == 'E') integral = false;
            p++;
        }
        std::string num(t.substr(start, p - start));
        if (num.empty() || num == "-") return std::nullopt;
        if (integral && !neg) {
            errno = 0;
            char* end = nullptr;
            unsigned long long u = std::strtoull(num.c_str(), &end, 10);
            if (errno == 0 && end == num.c_str() + num.size()) {
                return JsonValue(static_cast<std::uint64_t>(u));
            }
        }
        char* end = nullptr;
        double d = std::strtod(num.c_str(), &end);
        if (end != num.c_str() + num.size()) return std::nullopt;
        return JsonValue(d);
    }

    static std::optional<JsonValue>
    parseValue(std::string_view t, std::size_t& p)
    {
        skipWs(t, p);
        if (p >= t.size()) return std::nullopt;
        char c = t[p];
        if (c == 'n') {
            return consume(t, p, "null")
                       ? std::optional<JsonValue>(JsonValue())
                       : std::nullopt;
        }
        if (c == 't') {
            return consume(t, p, "true")
                       ? std::optional<JsonValue>(JsonValue(true))
                       : std::nullopt;
        }
        if (c == 'f') {
            return consume(t, p, "false")
                       ? std::optional<JsonValue>(JsonValue(false))
                       : std::nullopt;
        }
        if (c == '"') {
            auto s = parseString(t, p);
            if (!s) return std::nullopt;
            return JsonValue(std::move(*s));
        }
        if (c == '[') {
            p++;
            JsonValue out = array();
            skipWs(t, p);
            if (p < t.size() && t[p] == ']') {
                p++;
                return out;
            }
            while (true) {
                auto v = parseValue(t, p);
                if (!v) return std::nullopt;
                out.push(std::move(*v));
                skipWs(t, p);
                if (p >= t.size()) return std::nullopt;
                if (t[p] == ',') {
                    p++;
                    continue;
                }
                if (t[p] == ']') {
                    p++;
                    return out;
                }
                return std::nullopt;
            }
        }
        if (c == '{') {
            p++;
            JsonValue out = object();
            skipWs(t, p);
            if (p < t.size() && t[p] == '}') {
                p++;
                return out;
            }
            while (true) {
                skipWs(t, p);
                auto k = parseString(t, p);
                if (!k) return std::nullopt;
                skipWs(t, p);
                if (p >= t.size() || t[p] != ':') return std::nullopt;
                p++;
                auto v = parseValue(t, p);
                if (!v) return std::nullopt;
                out.obj().emplace_back(std::move(*k), std::move(*v));
                skipWs(t, p);
                if (p >= t.size()) return std::nullopt;
                if (t[p] == ',') {
                    p++;
                    continue;
                }
                if (t[p] == '}') {
                    p++;
                    return out;
                }
                return std::nullopt;
            }
        }
        return parseNumber(t, p);
    }

    std::variant<std::nullptr_t, bool, std::uint64_t, double, std::string,
                 Array, Object>
        v_;
};

} // namespace zc
