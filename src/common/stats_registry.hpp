/**
 * @file
 * Hierarchical statistics registry (zsim's AggregateStat idiom).
 *
 * Components register named, described stats into a StatGroup tree via
 * a registerStats(StatGroup&) hook; the tree is walked at dump time, so
 * stats are *pulled* from live counters rather than copied on every
 * event — registration is one-time setup cost, the hot paths keep
 * bumping their plain uint64 fields.
 *
 * Three stat flavours:
 *  - bound stats: a getter closure over a component's counter, read at
 *    every dump() (addCounter / addScalar / addString / addCustom);
 *  - snapshot stats: a value fixed at registration time (addConst*),
 *    for derived results computed once at end of run;
 *  - histograms: a bound UnitHistogram dumped as counts + summary.
 *
 * Names are unique within a group (stat vs. stat, stat vs. child
 * group); violations throw std::invalid_argument so misconfigured
 * registrations fail loudly and testably. reset() walks the tree
 * running registered reset hooks — the "end of warmup" semantics.
 */

#pragma once

#include <cstdint>
#include <fstream>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/json.hpp"
#include "common/stats.hpp"

namespace zc {

class StatGroup
{
  public:
    StatGroup() = default;
    StatGroup(const StatGroup&) = delete;
    StatGroup& operator=(const StatGroup&) = delete;

    /** Get-or-create a child group. Creating over a stat name throws. */
    StatGroup&
    group(const std::string& name, const std::string& desc = "")
    {
        for (auto& c : children_) {
            if (c->name_ == name) return *c;
        }
        if (statNames_.count(name)) {
            throw std::invalid_argument("StatGroup '" + name_ +
                                        "': group name '" + name +
                                        "' collides with a stat");
        }
        children_.push_back(std::make_unique<StatGroup>());
        children_.back()->name_ = name;
        children_.back()->desc_ = desc;
        return *children_.back();
    }

    /** Bound uint64 stat, read at dump time. */
    void
    addCounter(const std::string& name, const std::string& desc,
               std::function<std::uint64_t()> get)
    {
        addStat(name, desc,
                [g = std::move(get)] { return JsonValue(g()); });
    }

    /** Bound double stat, read at dump time. */
    void
    addScalar(const std::string& name, const std::string& desc,
              std::function<double()> get)
    {
        addStat(name, desc,
                [g = std::move(get)] { return JsonValue(g()); });
    }

    /** Bound string stat, read at dump time. */
    void
    addString(const std::string& name, const std::string& desc,
              std::function<std::string()> get)
    {
        addStat(name, desc,
                [g = std::move(get)] { return JsonValue(g()); });
    }

    /** Arbitrary bound stat producing any JSON shape (vectors, series). */
    void
    addCustom(const std::string& name, const std::string& desc,
              std::function<JsonValue()> get)
    {
        addStat(name, desc, std::move(get));
    }

    /** Snapshot stats: the value is fixed at registration time. */
    void
    addConst(const std::string& name, const std::string& desc,
             JsonValue value)
    {
        auto shared = std::make_shared<JsonValue>(std::move(value));
        addStat(name, desc, [shared] { return *shared; });
    }

    /**
     * Bound histogram: dumped as samples / mean / bin counts. The
     * histogram must outlive the group.
     */
    void
    addHistogram(const std::string& name, const std::string& desc,
                 const UnitHistogram* h)
    {
        addStat(name, desc, [h] {
            JsonValue out = JsonValue::object();
            out.set("samples", JsonValue(h->samples()));
            out.set("bins", JsonValue(std::uint64_t{h->bins()}));
            out.set("mean", JsonValue(h->mean()));
            JsonValue counts = JsonValue::array();
            for (std::size_t i = 0; i < h->bins(); i++) {
                counts.push(JsonValue(h->binCount(i)));
            }
            out.set("counts", std::move(counts));
            return out;
        });
    }

    /** Hook run by reset(), after descending into child groups. */
    void addResetHook(std::function<void()> hook)
    {
        resetHooks_.push_back(std::move(hook));
    }

    /** Dump the subtree; stat order is registration order. */
    JsonValue
    dump() const
    {
        JsonValue out = JsonValue::object();
        for (const auto& s : stats_) {
            out.obj().emplace_back(s.name, s.get());
        }
        for (const auto& c : children_) {
            out.obj().emplace_back(c->name_, c->dump());
        }
        return out;
    }

    /** Companion tree of stat/group descriptions (the dump's schema). */
    JsonValue
    describe() const
    {
        JsonValue out = JsonValue::object();
        for (const auto& s : stats_) {
            out.obj().emplace_back(s.name, JsonValue(s.desc));
        }
        for (const auto& c : children_) {
            JsonValue sub = c->describe();
            if (!c->desc_.empty()) {
                sub.obj().insert(sub.obj().begin(),
                                 {"_desc", JsonValue(c->desc_)});
            }
            out.obj().emplace_back(c->name_, std::move(sub));
        }
        return out;
    }

    void
    reset()
    {
        for (const auto& c : children_) c->reset();
        for (const auto& h : resetHooks_) h();
    }

    const std::string& name() const { return name_; }
    std::size_t numStats() const { return stats_.size(); }
    std::size_t numChildren() const { return children_.size(); }

  private:
    struct Stat
    {
        std::string name;
        std::string desc;
        std::function<JsonValue()> get;
    };

    void
    addStat(const std::string& name, const std::string& desc,
            std::function<JsonValue()> get)
    {
        if (!statNames_.insert(name).second) {
            throw std::invalid_argument("StatGroup '" + name_ +
                                        "': duplicate stat '" + name + "'");
        }
        for (const auto& c : children_) {
            if (c->name_ == name) {
                statNames_.erase(name);
                throw std::invalid_argument("StatGroup '" + name_ +
                                            "': stat name '" + name +
                                            "' collides with a group");
            }
        }
        stats_.push_back(Stat{name, desc, std::move(get)});
    }

    std::string name_;
    std::string desc_;
    std::vector<Stat> stats_;
    std::vector<std::unique_ptr<StatGroup>> children_;
    std::unordered_set<std::string> statNames_;
    std::vector<std::function<void()>> resetHooks_;
};

/**
 * Root of a stats tree plus serialization conveniences. Own one per
 * experiment; hand root() (or subgroups of it) to components'
 * registerStats() hooks.
 */
class StatsRegistry
{
  public:
    StatGroup& root() { return root_; }
    const StatGroup& root() const { return root_; }

    JsonValue toJson() const { return root_.dump(); }
    JsonValue schema() const { return root_.describe(); }
    void reset() { root_.reset(); }

    /** Pretty-print the tree to @p path; returns false on I/O error. */
    bool
    writeJsonFile(const std::string& path, int indent = 2) const
    {
        std::ofstream out(path);
        if (!out) return false;
        out << toJson().str(indent) << "\n";
        return out.good();
    }

  private:
    StatGroup root_;
};

/** Append one compact JSON record to a JSONL stream file. */
inline bool
appendJsonl(const std::string& path, const JsonValue& record)
{
    std::ofstream out(path, std::ios::app);
    if (!out) return false;
    out << record.str() << "\n";
    return out.good();
}

} // namespace zc
