/**
 * @file
 * Cooperative per-job wall-clock watchdog.
 *
 * The sweep engine arms a thread-local deadline around each grid job
 * (--job-timeout, runner/sweep.hpp); long-running simulation loops
 * call JobWatchdog::checkpoint() at natural boundaries (CmpSystem::run
 * iterations, OPT trace pre-generation). When the deadline passes, the
 * checkpoint throws StatusError(Timeout), unwinding the job cleanly —
 * the pool worker survives, the point is recorded as hung, and the
 * sweep continues. Cancellation is cooperative by design: killing a
 * compute-bound thread non-cooperatively would leak the shared pool.
 *
 * checkpoint() costs a thread_local bool test while disarmed, and
 * consults the clock only every kCheckInterval calls while armed.
 */

#pragma once

#include <chrono>
#include <cstdint>
#include <string>

#include "common/status.hpp"

namespace zc {

class JobWatchdog
{
  public:
    using Clock = std::chrono::steady_clock;

    /** Arm this thread's deadline @p timeout_ms from now. */
    static void
    arm(std::uint64_t timeout_ms)
    {
        state().deadline =
            Clock::now() + std::chrono::milliseconds(timeout_ms);
        state().timeoutMs = timeout_ms;
        state().calls = 0;
        state().armed = true;
    }

    static void disarm() { state().armed = false; }

    static bool armed() { return state().armed; }

    /** True iff armed and past the deadline (no throw). */
    static bool
    expired()
    {
        return state().armed && Clock::now() >= state().deadline;
    }

    /**
     * Throw StatusError(Timeout) if this thread's deadline has passed.
     * Cheap enough for per-iteration use in simulation loops.
     */
    static void
    checkpoint()
    {
        State& s = state();
        if (!s.armed) return;
        if (++s.calls % kCheckInterval != 0) return;
        if (Clock::now() < s.deadline) return;
        throw StatusError(Status::timeout(
            "job exceeded its " + std::to_string(s.timeoutMs) +
            " ms wall-clock budget (cancelled by the watchdog)"));
    }

  private:
    /** Clock polls are amortized over this many checkpoint() calls. */
    static constexpr std::uint64_t kCheckInterval = 256;

    struct State
    {
        bool armed = false;
        Clock::time_point deadline{};
        std::uint64_t timeoutMs = 0;
        std::uint64_t calls = 0;
    };

    static State&
    state()
    {
        thread_local State s;
        return s;
    }
};

/** RAII arm/disarm; 0 ms means "no deadline" (stays disarmed). */
class ScopedWatchdog
{
  public:
    explicit ScopedWatchdog(std::uint64_t timeout_ms)
    {
        if (timeout_ms > 0) JobWatchdog::arm(timeout_ms);
    }

    ~ScopedWatchdog() { JobWatchdog::disarm(); }

    ScopedWatchdog(const ScopedWatchdog&) = delete;
    ScopedWatchdog& operator=(const ScopedWatchdog&) = delete;
};

} // namespace zc
