/**
 * @file
 * CRC-framed record framing shared by the sweep journal
 * (runner/journal.cpp) and the zkv persistence op log (src/persist) —
 * docs/robustness.md, docs/durability.md.
 *
 * Two framings, one discipline: every record carries a CRC-32
 * (IEEE 802.3, common/crc32.hpp) over its payload so torn or corrupt
 * data is *detected*, never silently replayed, and readers can salvage
 * the longest valid prefix of a damaged file with an exact byte
 * offset.
 *
 * Text lines (journals, manifests — greppable, diffable):
 *
 *   TAG <crc32hex> <payload>\n
 *
 * where TAG is exactly 4 ASCII bytes and <crc32hex> is 8 lowercase hex
 * digits over the payload bytes. `writeTextLine` appends one line with
 * fflush + fsync (the durability point); `unframeTextLine` validates
 * tag and CRC and returns the payload.
 *
 * Binary records (op logs — compact, fixed offset math):
 *
 *   magic u32 LE | body bytes | crc32 u32 LE (over body)
 *
 * `appendBinaryRecord` frames a body; `unframeBinaryRecord` validates
 * a record in place, distinguishing a torn tail (Truncated: the file
 * simply ends early) from corruption (bad magic / CRC mismatch) so
 * callers can apply the journal salvage rule: keep the clean prefix,
 * truncate the rest, warn with the byte offset.
 */

#pragma once

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include <unistd.h>

#include "common/crc32.hpp"
#include "common/status.hpp"

namespace zc::framed {

/** "TAGX" + space + 8 hex + space = 14-byte text line prefix. */
constexpr std::size_t kTextPrefixLen = 14;

/**
 * Validate one framed text line (sans newline). Returns the payload on
 * success; a Corruption status naming what broke otherwise.
 */
inline Expected<std::string_view>
unframeTextLine(std::string_view line, const char* tag)
{
    if (line.size() < kTextPrefixLen ||
        line.substr(0, 4) != std::string_view(tag) || line[4] != ' ' ||
        line[13] != ' ') {
        return Status::corruption(std::string("malformed ") + tag +
                                  " framing");
    }
    std::uint32_t want = 0;
    for (std::size_t i = 5; i < 13; i++) {
        char c = line[i];
        std::uint32_t digit;
        if (c >= '0' && c <= '9') digit = static_cast<std::uint32_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            digit = static_cast<std::uint32_t>(c - 'a') + 10;
        else
            return Status::corruption(std::string("malformed ") + tag +
                                      " CRC field");
        want = want << 4 | digit;
    }
    std::string_view payload = line.substr(kTextPrefixLen);
    std::uint32_t got = Crc32::of(payload);
    if (got != want) {
        char buf[64];
        std::snprintf(buf, sizeof buf,
                      "CRC mismatch (computed %08x, recorded %08x)", got,
                      want);
        return Status::corruption(std::string(tag) + " " + buf);
    }
    return payload;
}

/**
 * Append one framed text line to @p f: `TAG <crc32hex> <payload>\n`,
 * flushed and fsync'd before returning — after this returns Ok the
 * record survives SIGKILL and (modulo the disk's own lies) power loss.
 * @p errPrefix names the file in failure messages, e.g. "journal
 * '/path'".
 */
inline Status
writeTextLine(std::FILE* f, const std::string& errPrefix, const char* tag,
              const std::string& payload)
{
    std::uint32_t crc = Crc32::of(payload);
    if (std::fprintf(f, "%s %08x %s\n", tag, crc, payload.c_str()) < 0) {
        return Status::ioError(errPrefix + ": write failed: " +
                               std::strerror(errno));
    }
    if (std::fflush(f) != 0) {
        return Status::ioError(errPrefix + ": flush failed: " +
                               std::strerror(errno));
    }
    // Durability point: after this returns, the record survives SIGKILL
    // and (modulo the disk's own lies) power loss.
    if (::fsync(fileno(f)) != 0) {
        return Status::ioError(errPrefix + ": fsync failed: " +
                               std::strerror(errno));
    }
    return Status::ok();
}

// ---- little-endian field helpers -----------------------------------

inline void
appendLe32(std::vector<std::uint8_t>& out, std::uint32_t v)
{
    out.push_back(static_cast<std::uint8_t>(v));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
    out.push_back(static_cast<std::uint8_t>(v >> 16));
    out.push_back(static_cast<std::uint8_t>(v >> 24));
}

inline void
appendLe64(std::vector<std::uint8_t>& out, std::uint64_t v)
{
    appendLe32(out, static_cast<std::uint32_t>(v));
    appendLe32(out, static_cast<std::uint32_t>(v >> 32));
}

inline std::uint32_t
readLe32(const std::uint8_t* p)
{
    return static_cast<std::uint32_t>(p[0]) |
           static_cast<std::uint32_t>(p[1]) << 8 |
           static_cast<std::uint32_t>(p[2]) << 16 |
           static_cast<std::uint32_t>(p[3]) << 24;
}

inline std::uint64_t
readLe64(const std::uint8_t* p)
{
    return static_cast<std::uint64_t>(readLe32(p)) |
           static_cast<std::uint64_t>(readLe32(p + 4)) << 32;
}

// ---- binary record framing -----------------------------------------

/** Framed size of a binary record with a @p bodyLen-byte body. */
constexpr std::size_t
binaryRecordSize(std::size_t bodyLen)
{
    return 4 + bodyLen + 4; // magic | body | crc
}

/**
 * Append one framed binary record: magic (LE) | body | CRC-32 over the
 * body (LE). The caller owns the body layout; fixed-size bodies make
 * offset math exact, which is what the torn-tail salvage contract
 * reports in.
 */
inline void
appendBinaryRecord(std::vector<std::uint8_t>& out, std::uint32_t magic,
                   const std::uint8_t* body, std::size_t bodyLen)
{
    appendLe32(out, magic);
    out.insert(out.end(), body, body + bodyLen);
    appendLe32(out, Crc32::of(body, bodyLen));
}

/**
 * Validate one framed binary record at @p data (with @p avail bytes
 * remaining) against @p magic and a fixed @p bodyLen. Returns a
 * pointer to the body on success. Failure modes are distinguished so
 * salvage can tell "the file ends here" from "this record is damaged":
 *
 *  - Truncated: fewer than binaryRecordSize(bodyLen) bytes remain —
 *    a torn tail (the SIGKILL case).
 *  - Corruption: wrong magic or CRC mismatch.
 */
inline Expected<const std::uint8_t*>
unframeBinaryRecord(const std::uint8_t* data, std::size_t avail,
                    std::uint32_t magic, std::size_t bodyLen)
{
    const std::size_t total = binaryRecordSize(bodyLen);
    if (avail < total) {
        return Status::truncated(
            "torn record: " + std::to_string(avail) + " byte(s) remain, " +
            std::to_string(total) + " needed");
    }
    if (readLe32(data) != magic) {
        char buf[64];
        std::snprintf(buf, sizeof buf,
                      "bad record magic (found %08x, want %08x)",
                      readLe32(data), magic);
        return Status::corruption(buf);
    }
    const std::uint8_t* body = data + 4;
    std::uint32_t want = readLe32(body + bodyLen);
    std::uint32_t got = Crc32::of(body, bodyLen);
    if (got != want) {
        char buf[64];
        std::snprintf(buf, sizeof buf,
                      "record CRC mismatch (computed %08x, recorded %08x)",
                      got, want);
        return Status::corruption(buf);
    }
    return body;
}

} // namespace zc::framed
