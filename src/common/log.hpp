/**
 * @file
 * Minimal gem5-style error/assertion helpers.
 *
 * panic():   an internal invariant was violated — a library bug. Aborts.
 * fatal():   the caller configured something impossible — user error.
 *            Exits with status 1.
 * zc_assert: cheap always-on invariant check used on non-hot paths.
 */

#pragma once

#include <cstdio>
#include <cstdlib>

namespace zc {

// Both helpers format into a local buffer and emit with a single
// stdio call: stdio locks per call, so concurrent sweep jobs failing
// at once (src/runner) produce whole, unsheared lines.

[[noreturn]] inline void
panicImpl(const char* file, int line, const char* msg)
{
    char buf[1024];
    std::snprintf(buf, sizeof buf, "panic: %s:%d: %s\n", file, line, msg);
    std::fputs(buf, stderr);
    std::abort();
}

[[noreturn]] inline void
fatalImpl(const char* file, int line, const char* msg)
{
    char buf[1024];
    std::snprintf(buf, sizeof buf, "fatal: %s:%d: %s\n", file, line, msg);
    std::fputs(buf, stderr);
    std::exit(1);
}

} // namespace zc

#define zc_panic(msg) ::zc::panicImpl(__FILE__, __LINE__, (msg))
#define zc_fatal(msg) ::zc::fatalImpl(__FILE__, __LINE__, (msg))

#define zc_assert(cond)                                                     \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::zc::panicImpl(__FILE__, __LINE__,                             \
                            "assertion failed: " #cond);                    \
        }                                                                   \
    } while (0)
