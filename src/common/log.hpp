/**
 * @file
 * Minimal gem5-style error/assertion helpers.
 *
 * panic():   an internal invariant was violated — a library bug. Aborts.
 * fatal():   the caller configured something impossible — user error.
 *            Exits with status 1.
 * zc_assert: cheap always-on invariant check used on non-hot paths.
 */

#pragma once

#include <cstdio>
#include <cstdlib>

namespace zc {

[[noreturn]] inline void
panicImpl(const char* file, int line, const char* msg)
{
    std::fprintf(stderr, "panic: %s:%d: %s\n", file, line, msg);
    std::abort();
}

[[noreturn]] inline void
fatalImpl(const char* file, int line, const char* msg)
{
    std::fprintf(stderr, "fatal: %s:%d: %s\n", file, line, msg);
    std::exit(1);
}

} // namespace zc

#define zc_panic(msg) ::zc::panicImpl(__FILE__, __LINE__, (msg))
#define zc_fatal(msg) ::zc::fatalImpl(__FILE__, __LINE__, (msg))

#define zc_assert(cond)                                                     \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::zc::panicImpl(__FILE__, __LINE__,                             \
                            "assertion failed: " #cond);                    \
        }                                                                   \
    } while (0)
