/**
 * @file
 * Lightweight statistics primitives used by simulators and benches.
 *
 * Deliberately small: counters, a fixed-bin histogram (for the
 * associativity-distribution CDFs of Section IV), streaming mean /
 * geometric mean, and a quantile helper. No global registry — components
 * own their stats and expose them through accessors, keeping modules
 * independently testable.
 */

#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/log.hpp"

namespace zc {

/** Monotonic event counter. */
class Counter
{
  public:
    void inc(std::uint64_t n = 1) { value_ += n; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * Histogram over [0, 1] with uniform bins.
 *
 * Used to collect eviction-priority samples; cdf() yields the empirical
 * associativity distribution of Section IV-A.
 */
class UnitHistogram
{
  public:
    explicit UnitHistogram(std::size_t bins = 100) : counts_(bins, 0)
    {
        zc_assert(bins > 0);
    }

    /**
     * Record a sample; finite values are clamped to [0, 1]. NaN samples
     * are dropped (std::clamp on NaN is undefined) and tallied in
     * nanSamples() so a producer emitting garbage stays visible.
     */
    void
    record(double x)
    {
        if (std::isnan(x)) {
            nan_++;
            return;
        }
        x = std::clamp(x, 0.0, 1.0);
        auto bin = static_cast<std::size_t>(x * counts_.size());
        if (bin == counts_.size()) bin--;
        counts_[bin]++;
        total_++;
    }

    std::uint64_t samples() const { return total_; }
    std::uint64_t nanSamples() const { return nan_; }
    std::size_t bins() const { return counts_.size(); }
    std::uint64_t binCount(std::size_t i) const { return counts_.at(i); }

    /**
     * Empirical CDF evaluated at the right edge of each bin.
     * Returns a vector c where c[i] = P(X <= (i+1)/bins).
     */
    std::vector<double>
    cdf() const
    {
        std::vector<double> out(counts_.size(), 0.0);
        std::uint64_t acc = 0;
        for (std::size_t i = 0; i < counts_.size(); i++) {
            acc += counts_[i];
            out[i] = total_ ? static_cast<double>(acc) /
                                  static_cast<double>(total_)
                            : 0.0;
        }
        return out;
    }

    /** Mean of recorded samples (bin-center approximation). */
    double
    mean() const
    {
        if (total_ == 0) return 0.0;
        double acc = 0.0;
        for (std::size_t i = 0; i < counts_.size(); i++) {
            double center = (static_cast<double>(i) + 0.5) /
                            static_cast<double>(counts_.size());
            acc += center * static_cast<double>(counts_[i]);
        }
        return acc / static_cast<double>(total_);
    }

    /**
     * Fold @p other's samples into this histogram. Both must have the
     * same bin count; used to aggregate per-thread histograms after a
     * parallel run (e.g. the store load generator's latency bins).
     */
    void
    merge(const UnitHistogram& other)
    {
        zc_assert(counts_.size() == other.counts_.size());
        for (std::size_t i = 0; i < counts_.size(); i++) {
            counts_[i] += other.counts_[i];
        }
        total_ += other.total_;
        nan_ += other.nan_;
    }

    void
    reset()
    {
        std::fill(counts_.begin(), counts_.end(), 0);
        total_ = 0;
        nan_ = 0;
    }

  private:
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
    std::uint64_t nan_ = 0;
};

/**
 * Streaming arithmetic mean / min / max / variance over doubles.
 * Variance uses Welford's online algorithm (numerically stable for
 * long runs of near-equal samples, e.g. per-epoch miss rates).
 */
class RunningStat
{
  public:
    void
    record(double x)
    {
        n_++;
        sum_ += x;
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
        double delta = x - mean_;
        mean_ += delta / static_cast<double>(n_);
        m2_ += delta * (x - mean_);
    }

    std::uint64_t count() const { return n_; }
    double sum() const { return sum_; }
    double mean() const { return n_ ? sum_ / static_cast<double>(n_) : 0.0; }
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }

    /** Population variance (M2/n); 0 with fewer than two samples. */
    double
    variance() const
    {
        return n_ > 1 ? m2_ / static_cast<double>(n_) : 0.0;
    }

    /**
     * Fold @p other's samples into this stat (Chan et al. pairwise
     * combination, the parallel form of Welford). Used to aggregate
     * per-thread streams after a parallel run.
     */
    void
    merge(const RunningStat& other)
    {
        if (other.n_ == 0) return;
        if (n_ == 0) {
            *this = other;
            return;
        }
        double delta = other.mean_ - mean_;
        auto n = static_cast<double>(n_);
        auto m = static_cast<double>(other.n_);
        m2_ += other.m2_ + delta * delta * n * m / (n + m);
        mean_ += delta * m / (n + m);
        n_ += other.n_;
        sum_ += other.sum_;
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }

    double stddev() const { return std::sqrt(variance()); }

  private:
    std::uint64_t n_ = 0;
    double sum_ = 0.0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/** Geometric mean of strictly positive values. */
inline double
geomean(const std::vector<double>& xs)
{
    if (xs.empty()) return 0.0;
    double acc = 0.0;
    for (double x : xs) {
        zc_assert(x > 0.0);
        acc += std::log(x);
    }
    return std::exp(acc / static_cast<double>(xs.size()));
}

/**
 * Kolmogorov-Smirnov distance between two CDFs sampled on the same grid.
 * Used in tests to check empirical distributions against F_A(x) = x^n.
 */
inline double
ksDistance(const std::vector<double>& a, const std::vector<double>& b)
{
    zc_assert(a.size() == b.size());
    double d = 0.0;
    for (std::size_t i = 0; i < a.size(); i++) {
        d = std::max(d, std::abs(a[i] - b[i]));
    }
    return d;
}

/** Linear-interpolated quantile (q in [0,1]) of a sorted copy of @p xs. */
inline double
quantile(std::vector<double> xs, double q)
{
    zc_assert(!xs.empty());
    zc_assert(q >= 0.0 && q <= 1.0);
    std::sort(xs.begin(), xs.end());
    double pos = q * static_cast<double>(xs.size() - 1);
    auto lo = static_cast<std::size_t>(pos);
    if (lo + 1 >= xs.size()) return xs.back();
    double frac = pos - static_cast<double>(lo);
    return xs[lo] * (1.0 - frac) + xs[lo + 1] * frac;
}

} // namespace zc
