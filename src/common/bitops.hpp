/**
 * @file
 * Small bit-manipulation helpers used across the library.
 */

#pragma once

#include <bit>
#include <cstdint>

namespace zc {

/** True iff @p v is a power of two (0 is not). */
constexpr bool
isPow2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** floor(log2(v)); @p v must be nonzero. */
constexpr std::uint32_t
log2Floor(std::uint64_t v)
{
    return 63u - static_cast<std::uint32_t>(std::countl_zero(v));
}

/** ceil(log2(v)); @p v must be nonzero. */
constexpr std::uint32_t
log2Ceil(std::uint64_t v)
{
    return v == 1 ? 0 : log2Floor(v - 1) + 1;
}

/** Round @p v up to the next power of two (identity for powers of two). */
constexpr std::uint64_t
roundUpPow2(std::uint64_t v)
{
    return v <= 1 ? 1 : (std::uint64_t{1} << log2Ceil(v));
}

/** Extract bits [lo, lo+len) of @p v. */
constexpr std::uint64_t
bits(std::uint64_t v, std::uint32_t lo, std::uint32_t len)
{
    return (v >> lo) & ((len >= 64) ? ~std::uint64_t{0}
                                    : ((std::uint64_t{1} << len) - 1));
}

/** Population count. */
constexpr std::uint32_t
popcount(std::uint64_t v)
{
    return static_cast<std::uint32_t>(std::popcount(v));
}

} // namespace zc
