/**
 * @file
 * Deterministic, seedable fault injection for exercising error paths.
 *
 * Library code marks recoverable failure sites with a named probe:
 *
 *     if (ZC_INJECT_FAULT("trace.read.short_read")) { ...fail path... }
 *
 * Sites are compiled in unconditionally but cost a single relaxed
 * atomic load while nothing is enabled — the registry is armed only
 * when a test calls FaultInjection::enable(). Firing is a pure
 * function of the per-site hit counter and the FaultSpec (including
 * the seeded probabilistic mode), so a failing test reproduces
 * exactly under any scheduling.
 *
 * The site catalog lives in docs/robustness.md; tests use ScopedFault
 * so a throwing assertion can never leave a site armed for the next
 * test.
 */

#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace zc {

/** When and how often an enabled site fails. */
struct FaultSpec
{
    /** Hits to let through before the first failure (0 = fail at once). */
    std::uint64_t afterHits = 0;

    /** Failures to inject once firing starts; 0 = every later hit. */
    std::uint64_t failCount = 1;

    /** Probability an eligible hit fails (seeded, deterministic). */
    double probability = 1.0;

    std::uint64_t seed = 1;
};

class FaultInjection
{
  public:
    /** Fast gate: false whenever no site is enabled. */
    static bool
    armed()
    {
        return armedSites().load(std::memory_order_relaxed) > 0;
    }

    static void
    enable(const std::string& site, FaultSpec spec = {})
    {
        std::lock_guard<std::mutex> g(mx());
        auto [it, inserted] = sites().try_emplace(site);
        if (inserted) armedSites().fetch_add(1, std::memory_order_relaxed);
        it->second = SiteState{spec, 0, 0};
    }

    static void
    disable(const std::string& site)
    {
        std::lock_guard<std::mutex> g(mx());
        if (sites().erase(site) > 0) {
            armedSites().fetch_sub(1, std::memory_order_relaxed);
        }
    }

    static void
    resetAll()
    {
        std::lock_guard<std::mutex> g(mx());
        armedSites().fetch_sub(
            static_cast<std::int64_t>(sites().size()),
            std::memory_order_relaxed);
        sites().clear();
    }

    /** Times an enabled @p site was consulted (0 when not enabled). */
    static std::uint64_t
    hitCount(const std::string& site)
    {
        std::lock_guard<std::mutex> g(mx());
        auto it = sites().find(site);
        return it == sites().end() ? 0 : it->second.hits;
    }

    /**
     * Slow path behind ZC_INJECT_FAULT: count the hit and decide.
     * Never called while no site is enabled.
     */
    static bool
    shouldFail(const char* site)
    {
        std::lock_guard<std::mutex> g(mx());
        auto it = sites().find(site);
        if (it == sites().end()) return false;
        SiteState& s = it->second;
        std::uint64_t hit = s.hits++;
        if (hit < s.spec.afterHits) return false;
        if (s.spec.failCount != 0 && s.failures >= s.spec.failCount) {
            return false;
        }
        if (s.spec.probability < 1.0 &&
            toUnit(mix(s.spec.seed, hit)) >= s.spec.probability) {
            return false;
        }
        s.failures++;
        return true;
    }

  private:
    struct SiteState
    {
        FaultSpec spec;
        std::uint64_t hits = 0;
        std::uint64_t failures = 0;
    };

    static std::uint64_t
    mix(std::uint64_t seed, std::uint64_t n)
    {
        // splitmix64 over (seed, hit index): deterministic per site.
        std::uint64_t x = seed + 0x9e3779b97f4a7c15ULL * (n + 1);
        x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
        x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
        return x ^ (x >> 31);
    }

    static double
    toUnit(std::uint64_t x)
    {
        return static_cast<double>(x >> 11) * 0x1.0p-53;
    }

    static std::atomic<std::int64_t>&
    armedSites()
    {
        static std::atomic<std::int64_t> n{0};
        return n;
    }

    static std::mutex&
    mx()
    {
        static std::mutex m;
        return m;
    }

    static std::map<std::string, SiteState>&
    sites()
    {
        static std::map<std::string, SiteState> s;
        return s;
    }
};

/** RAII enable/disable for tests; never leaks an armed site. */
class ScopedFault
{
  public:
    explicit ScopedFault(std::string site, FaultSpec spec = {})
        : site_(std::move(site))
    {
        FaultInjection::enable(site_, spec);
    }

    ~ScopedFault() { FaultInjection::disable(site_); }

    ScopedFault(const ScopedFault&) = delete;
    ScopedFault& operator=(const ScopedFault&) = delete;

  private:
    std::string site_;
};

} // namespace zc

#define ZC_INJECT_FAULT(site)                                               \
    (::zc::FaultInjection::armed() &&                                       \
     ::zc::FaultInjection::shouldFail(site))
