/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic component in the library (workload generators, random
 * replacement, the random-candidates array, H3 matrix initialization) draws
 * from a seeded Pcg32 stream so that experiments are reproducible
 * bit-for-bit across runs and platforms. std::mt19937 is avoided because
 * its distributions are not guaranteed identical across standard library
 * implementations.
 */

#pragma once

#include <cstdint>

#include "common/log.hpp"

namespace zc {

/**
 * PCG32 (O'Neill, pcg-random.org): small, fast, statistically strong
 * 32-bit generator with 64-bit state and a selectable stream.
 */
class Pcg32
{
  public:
    /** Construct with a seed and an optional independent stream id. */
    explicit Pcg32(std::uint64_t seed = 0x853c49e6748fea9bULL,
                   std::uint64_t stream = 0xda3e39cb94b95bdbULL)
    {
        state_ = 0;
        inc_ = (stream << 1u) | 1u;
        next();
        state_ += seed;
        next();
    }

    /** Next uniformly distributed 32-bit value. */
    std::uint32_t
    next()
    {
        std::uint64_t old = state_;
        state_ = old * 6364136223846793005ULL + inc_;
        auto xorshifted =
            static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
        auto rot = static_cast<std::uint32_t>(old >> 59u);
        return (xorshifted >> rot) | (xorshifted << ((-rot) & 31u));
    }

    /** Next 64-bit value (two draws). */
    std::uint64_t
    next64()
    {
        return (static_cast<std::uint64_t>(next()) << 32) | next();
    }

    /**
     * Unbiased draw in [0, bound) using Lemire's multiply-shift rejection
     * method.
     */
    std::uint32_t
    below(std::uint32_t bound)
    {
        zc_assert(bound > 0);
        std::uint64_t m = static_cast<std::uint64_t>(next()) * bound;
        auto lo = static_cast<std::uint32_t>(m);
        if (lo < bound) {
            std::uint32_t threshold = (-bound) % bound;
            while (lo < threshold) {
                m = static_cast<std::uint64_t>(next()) * bound;
                lo = static_cast<std::uint32_t>(m);
            }
        }
        return static_cast<std::uint32_t>(m >> 32);
    }

    /** Uniform double in [0, 1), 53 bits of randomness. */
    double
    uniform()
    {
        return static_cast<double>(next64() >> 11) * 0x1.0p-53;
    }

  private:
    std::uint64_t state_;
    std::uint64_t inc_;
};

} // namespace zc
