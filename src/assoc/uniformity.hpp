/**
 * @file
 * Analytic associativity under the uniformity assumption (Section IV-B).
 *
 * If the eviction priorities of the n replacement candidates are i.i.d.
 * U[0,1], the associativity A = max{E_1..E_n} has CDF F_A(x) = x^n.
 * These helpers evaluate that distribution on the same grids the
 * empirical histograms use, so benches and tests can compare directly
 * (Fig. 2 and the dotted curves of Fig. 3).
 */

#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/log.hpp"

namespace zc {

/** F_A(x) = x^n. */
inline double
uniformityCdfAt(double x, std::uint32_t n)
{
    zc_assert(n >= 1);
    return std::pow(x, static_cast<double>(n));
}

/**
 * F_A sampled at the right edge of each of @p bins uniform bins over
 * [0,1] — the grid UnitHistogram::cdf() uses.
 */
inline std::vector<double>
uniformityCdf(std::uint32_t n, std::size_t bins)
{
    std::vector<double> out(bins, 0.0);
    for (std::size_t i = 0; i < bins; i++) {
        double x = static_cast<double>(i + 1) / static_cast<double>(bins);
        out[i] = uniformityCdfAt(x, n);
    }
    return out;
}

/** Mean of A under uniformity: n/(n+1). */
inline double
uniformityMean(std::uint32_t n)
{
    return static_cast<double>(n) / static_cast<double>(n + 1);
}

/**
 * Probability of evicting a block with priority below @p x — the
 * "evictions of blocks with low priority quickly become very rare"
 * quantity of Fig. 2's semi-log plot (e.g. n=16, x=0.4 -> ~1e-6).
 */
inline double
lowPriorityEvictionProb(double x, std::uint32_t n)
{
    return uniformityCdfAt(x, n);
}

} // namespace zc
