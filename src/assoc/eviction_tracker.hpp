/**
 * @file
 * Empirical associativity distribution measurement (Section IV-A).
 *
 * The tracker attaches to a CacheArray as its eviction observer. On each
 * observed eviction it computes the victim's *eviction priority*: its
 * rank in the policy's global keep-order, normalized to [0,1] (rank
 * B-1 — the globally most evictable block — maps to 1.0). The resulting
 * histogram of priorities is the associativity distribution; its CDF is
 * what Fig. 2 and Fig. 3 plot.
 *
 * Ranking scans all resident blocks (O(B) per sample), so the tracker
 * supports sampling every k-th eviction; the distribution estimate is
 * unbiased under sampling. Cold fills never reach the tracker (arrays
 * only invoke the observer on real evictions); an eviction from a
 * partially-occupied array — routine for bit-select indexing, whose
 * sets fill unevenly — is a genuine replacement decision and is ranked
 * against the blocks resident at that moment.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "cache/cache_array.hpp"
#include "common/stats.hpp"

namespace zc {

/**
 * How rank ties (blocks the policy scores identically, e.g. one
 * bucketed-LRU age class) are converted to a single rank. The paper
 * defines rank over a total order but evaluates with bucketed LRU,
 * where ties are wide; the choice matters for coarse policies.
 */
enum class TieMode {
    Refined,    ///< break ties with the policy's tieBreaker (total order)
    Optimistic, ///< victim ranks above every tied block (rank = class top)
    Midpoint,   ///< victim takes the middle of its tie class
};

class EvictionPriorityTracker
{
  public:
    /**
     * @param bins Histogram resolution over [0,1].
     * @param sample_period Record every k-th eligible eviction.
     * @param tie_mode Tie handling for coarse-scored policies.
     */
    explicit EvictionPriorityTracker(std::size_t bins = 100,
                                     std::uint64_t sample_period = 1,
                                     TieMode tie_mode = TieMode::Refined)
        : hist_(bins), samplePeriod_(sample_period), tieMode_(tie_mode)
    {
        zc_assert(sample_period >= 1);
    }

    /** Install this tracker as @p array's eviction observer. */
    void
    attach(CacheArray& array)
    {
        array.setEvictionObserver(
            [this](const CacheArray& a, BlockPos victim) {
                onEviction(a, victim);
            });
    }

    /** Observer entry point (also callable directly from tests). */
    void
    onEviction(const CacheArray& array, BlockPos victim)
    {
        if (array.validCount() < 2) return; // rank undefined
        eligible_++;
        if (eligible_ % samplePeriod_ != 0) return;

        const ReplacementPolicy& policy = array.policy();
        double victim_score = policy.score(victim);
        std::uint64_t keep_preferred = 0; // blocks ranked "keep" vs victim
        std::uint64_t tied = 0;
        std::uint64_t total = 0;
        array.forEachValid([&](BlockPos pos, Addr) {
            total++;
            if (pos == victim) return;
            double s = policy.score(pos);
            if (s > victim_score) {
                keep_preferred++;
            } else if (s == victim_score) {
                tied++;
                if (tieMode_ == TieMode::Refined &&
                    policy.ordersBefore(victim, pos)) {
                    keep_preferred++;
                }
            }
        });
        zc_assert(total >= 2);
        double rank = static_cast<double>(keep_preferred);
        if (tieMode_ == TieMode::Midpoint) {
            rank += static_cast<double>(tied) / 2.0;
        }
        double e = rank / static_cast<double>(total - 1);
        hist_.record(e);
    }

    const UnitHistogram& histogram() const { return hist_; }
    std::vector<double> cdf() const { return hist_.cdf(); }
    std::uint64_t samples() const { return hist_.samples(); }
    std::uint64_t eligibleEvictions() const { return eligible_; }

    void
    reset()
    {
        hist_.reset();
        eligible_ = 0;
    }

  private:
    UnitHistogram hist_;
    std::uint64_t samplePeriod_;
    TieMode tieMode_;
    std::uint64_t eligible_ = 0;
};

} // namespace zc
