#!/usr/bin/env python3
"""Offline reporter/validator for zkv live-telemetry artifacts.

Consumes the Chrome trace-event JSON written by the store's tracer
(``store_loadgen --trace-out=...``) and, optionally, the windowed
metrics NDJSON (``--metrics-out=...``), and prints a per-phase latency
summary: op counts by kind, total/net/lock-wait/probe/walk time, drop
accounting, and per-thread span counts. Under ``--validate`` it checks
the structural invariants the C++ tests pin down (tests/test_obs.cpp,
docs/telemetry.md) and exits nonzero on any violation — the CI smoke
job runs it against a fresh trace on every push:

  - the file is valid JSON with a ``traceEvents`` array;
  - every event has the required keys for its phase type, and child
    spans (net/lock_wait/probe/walk) nest inside their op span's interval;
  - ``otherData`` reconciles: ops_recorded + ops_dropped == ops_expected
    (when the producer supplied an expected count), and ops_recorded
    equals the op spans actually present in the file;
  - with --metrics: every NDJSON record parses, d_* deltas are
    non-negative, and each d_* column sums to the final cumulative
    counter (the windows partition the run).

Usage:
  trace_report.py TRACE.json                         # summarize
  trace_report.py TRACE.json --validate              # CI gate
  trace_report.py TRACE.json --metrics M.ndjson --validate
  trace_report.py TRACE.json --expect-ops N          # cross-check count
"""

import argparse
import collections
import json
import sys

OP_NAMES = ("get", "put", "erase")
PHASE_NAMES = ("net", "lock_wait", "probe", "walk")


def fail(msg):
    print(f"trace_report: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load_trace(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail(f"{path}: no traceEvents array (not a trace-event document)")
    if not isinstance(doc["traceEvents"], list):
        fail(f"{path}: traceEvents is not an array")
    return doc


def scan(doc, validate):
    """One pass over the events: tallies + structural checks."""
    ops = collections.Counter()          # op name -> count
    phase_us = collections.Counter()     # phase name -> total us
    op_us = collections.Counter()        # op name -> total us
    per_thread = collections.Counter()   # tid -> op span count
    flags = collections.Counter()        # hit/inserted/evicted/error
    instants = 0
    metadata = 0
    open_op = {}                         # tid -> (ts, dur) of last op span

    for i, e in enumerate(doc["traceEvents"]):
        if not isinstance(e, dict):
            fail(f"event {i} is not an object")
        ph = e.get("ph")
        name = e.get("name")
        if ph is None or name is None:
            fail(f"event {i} lacks ph/name")
        if ph == "M":
            metadata += 1
            continue
        tid = e.get("tid")
        ts = e.get("ts")
        if validate and (tid is None or ts is None):
            fail(f"event {i} ({name}) lacks tid/ts")
        if ph == "i":
            instants += 1
            continue
        if ph != "X":
            fail(f"event {i} has unexpected phase type {ph!r}")
        dur = e.get("dur")
        if validate and dur is None:
            fail(f"complete event {i} ({name}) lacks dur")
        if name in OP_NAMES:
            ops[name] += 1
            op_us[name] += dur or 0.0
            per_thread[tid] += 1
            open_op[tid] = (ts, dur or 0.0)
            args = e.get("args", {})
            for flag in ("hit", "inserted", "evicted", "error"):
                if args.get(flag):
                    flags[flag] += 1
        elif name in PHASE_NAMES:
            phase_us[name] += dur or 0.0
            if validate:
                parent = open_op.get(tid)
                if parent is None:
                    fail(f"child span {i} ({name}) precedes any op span "
                         f"on tid {tid}")
                pts, pdur = parent
                if ts < pts - 1e-6 or ts + (dur or 0.0) > pts + pdur + 1e-3:
                    fail(f"child span {i} ({name}) [{ts}, {ts + dur}] "
                         f"escapes its op span [{pts}, {pts + pdur}]")
        else:
            fail(f"event {i} has unexpected name {name!r}")

    return {
        "ops": ops,
        "op_us": op_us,
        "phase_us": phase_us,
        "per_thread": per_thread,
        "flags": flags,
        "instants": instants,
        "metadata": metadata,
    }


def check_reconciliation(doc, tallies, expect_ops):
    other = doc.get("otherData", {})
    recorded = other.get("ops_recorded")
    dropped = other.get("ops_dropped")
    expected = other.get("ops_expected")
    span_total = sum(tallies["ops"].values())

    if recorded is None or dropped is None:
        fail("otherData lacks ops_recorded/ops_dropped")
    if recorded != span_total:
        fail(f"otherData.ops_recorded={recorded} but the file holds "
             f"{span_total} op spans")
    if expect_ops is not None:
        expected = expect_ops
    if expected:
        if recorded + dropped != expected:
            fail(f"recorded({recorded}) + dropped({dropped}) != "
                 f"expected({expected})")
    return recorded, dropped, expected


def check_metrics(path, validate):
    records = []
    try:
        with open(path) as f:
            for ln, line in enumerate(f, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(json.loads(line))
                except json.JSONDecodeError as e:
                    fail(f"{path}:{ln}: {e}")
    except OSError as e:
        fail(f"{path}: {e}")
    if not records:
        if validate:
            fail(f"{path}: no metrics windows")
        return records

    deltas = collections.Counter()
    for ln, rec in enumerate(records, 1):
        for k, v in rec.items():
            if k.startswith("d_"):
                if validate and v < 0:
                    fail(f"{path} window {ln}: {k}={v} is negative")
                deltas[k[2:]] += v
    final = records[-1]
    for name, total in sorted(deltas.items()):
        if name in final and validate and total != final[name]:
            fail(f"{path}: sum(d_{name})={total} != final "
                 f"cumulative {name}={final[name]} — windows do not "
                 f"partition the run")
    return records


def main():
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("trace", help="Chrome trace-event JSON from the tracer")
    ap.add_argument("--metrics", help="windowed metrics NDJSON to check")
    ap.add_argument("--expect-ops", type=int, default=None,
                    help="total ops the run performed (overrides the "
                         "trace's own ops_expected)")
    ap.add_argument("--validate", action="store_true",
                    help="enforce structural invariants; nonzero exit on "
                         "any violation")
    args = ap.parse_args()

    doc = load_trace(args.trace)
    tallies = scan(doc, args.validate)
    recorded, dropped, expected = check_reconciliation(
        doc, tallies, args.expect_ops)

    span_total = sum(tallies["ops"].values())
    print(f"trace: {args.trace}")
    print(f"  events: {len(doc['traceEvents'])} "
          f"({span_total} op spans, {tallies['instants']} instants, "
          f"{tallies['metadata']} metadata)")
    print(f"  threads: {len(tallies['per_thread'])}  "
          f"recorded: {recorded}  dropped: {dropped}"
          + (f"  expected: {expected}" if expected else ""))

    for name in OP_NAMES:
        n = tallies["ops"][name]
        if n == 0:
            continue
        mean_us = tallies["op_us"][name] / n
        print(f"  {name:5s} x{n:<10d} mean {mean_us:9.3f} us")
    total_op_us = sum(tallies["op_us"].values())
    if total_op_us > 0:
        for phase in PHASE_NAMES:
            us = tallies["phase_us"][phase]
            print(f"  {phase:9s} {us:12.1f} us total "
                  f"({100.0 * us / total_op_us:5.1f}% of op time)")
    if tallies["flags"]:
        pretty = ", ".join(f"{k}={v}"
                           for k, v in sorted(tallies["flags"].items()))
        print(f"  outcomes: {pretty}")

    if args.metrics:
        windows = check_metrics(args.metrics, args.validate)
        print(f"metrics: {args.metrics}: {len(windows)} windows")
        if windows:
            last = windows[-1]
            ops = last.get("ops")
            if ops is not None:
                print(f"  final cumulative ops: {ops}")
            if args.validate and expected and ops is not None:
                if ops != expected:
                    fail(f"metrics final ops={ops} != expected {expected}")

    if args.validate:
        print("trace_report: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
