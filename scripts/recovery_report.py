#!/usr/bin/env python3
"""Offline reporter/validator for zkv crash-recovery reports.

Consumes the recovery report JSON written by ``zkv_server
--recovery-report-out=...`` (docs/durability.md) and prints a per-shard
summary: snapshot coverage, log records replayed vs skipped, salvaged
bytes, and seqno-gap drop evidence. Under ``--validate`` it checks the
accounting invariants the C++ tests pin down (tests/test_persist.cpp)
and exits nonzero on any violation — the CI crash-recovery smoke job
runs it against a post-SIGKILL restart on every push:

  - the file is a JSON object with ``shards``, totals, and a
    ``per_shard`` array of exactly ``shards`` entries in shard order;
  - per shard, ``replayed + skipped == log_records`` (every decoded
    record is either applied or covered by the snapshot watermark),
    ``valid_bytes`` is ``log_records`` whole 33-byte records, and
    ``high_water >= snapshot_watermark``;
  - a shard without a snapshot cannot have skipped records or a
    nonzero watermark;
  - every seqno gap is a real hole (``next_seqno > prev_seqno + 1``)
    at a record-aligned byte offset, and ``dropped_records`` equals
    the summed gap widths exactly;
  - salvaged bytes always come with a human-readable warning, and the
    top-level totals equal the per-shard sums.

Usage:
  recovery_report.py REPORT.json                  # summarize
  recovery_report.py REPORT.json --validate       # CI gate
  recovery_report.py REPORT.json --validate --expect-clean
      # additionally require zero salvaged bytes / gaps / warnings
"""

import argparse
import json
import sys

OP_RECORD_SIZE = 33  # framed PUT/ERASE/EVICT record (docs/durability.md)

SHARD_KEYS = (
    "shard", "snapshot_loaded", "snapshot_records", "snapshot_watermark",
    "log_segments", "log_records", "replayed", "skipped", "valid_bytes",
    "salvaged_bytes", "dropped_records", "high_water", "seqno_gaps",
    "warnings",
)

TOTAL_KEYS = ("replayed", "skipped", "salvaged_bytes", "dropped_records")


def fail(msg):
    print(f"recovery_report: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load_report(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")
    if not isinstance(doc, dict) or "per_shard" not in doc:
        fail(f"{path}: no per_shard array (not a recovery report)")
    return doc


def check_shard(i, s):
    """Structural + accounting invariants for one shard entry."""
    for k in SHARD_KEYS:
        if k not in s:
            fail(f"shard entry {i} lacks key {k!r}")
    if s["shard"] != i:
        fail(f"per_shard[{i}].shard={s['shard']} — entries out of order")
    if s["replayed"] + s["skipped"] != s["log_records"]:
        fail(f"shard {i}: replayed({s['replayed']}) + "
             f"skipped({s['skipped']}) != log_records({s['log_records']})")
    if s["valid_bytes"] != s["log_records"] * OP_RECORD_SIZE:
        fail(f"shard {i}: valid_bytes={s['valid_bytes']} is not "
             f"log_records({s['log_records']}) x {OP_RECORD_SIZE}-byte "
             f"records")
    if s["high_water"] < s["snapshot_watermark"]:
        fail(f"shard {i}: high_water={s['high_water']} < "
             f"snapshot_watermark={s['snapshot_watermark']}")
    if not s["snapshot_loaded"]:
        if s["snapshot_records"] != 0 or s["snapshot_watermark"] != 0:
            fail(f"shard {i}: no snapshot loaded but snapshot_records="
                 f"{s['snapshot_records']} watermark="
                 f"{s['snapshot_watermark']}")
        if s["skipped"] != 0:
            fail(f"shard {i}: {s['skipped']} records skipped without a "
                 f"snapshot watermark to cover them")

    gap_width = 0
    for j, g in enumerate(s["seqno_gaps"]):
        for k in ("segment", "byte_offset", "prev_seqno", "next_seqno"):
            if k not in g:
                fail(f"shard {i} gap {j} lacks key {k!r}")
        if g["next_seqno"] <= g["prev_seqno"] + 1:
            fail(f"shard {i} gap {j}: [{g['prev_seqno']} -> "
                 f"{g['next_seqno']}] is not a hole")
        if g["byte_offset"] % OP_RECORD_SIZE != 0:
            fail(f"shard {i} gap {j}: byte_offset={g['byte_offset']} "
                 f"is not record-aligned")
        gap_width += g["next_seqno"] - g["prev_seqno"] - 1
    if gap_width != s["dropped_records"]:
        fail(f"shard {i}: dropped_records={s['dropped_records']} but "
             f"the gaps account for {gap_width}")
    if s["salvaged_bytes"] > 0 and not s["warnings"]:
        fail(f"shard {i}: {s['salvaged_bytes']} bytes salvaged "
             f"without a warning")


def check_totals(doc):
    per = doc["per_shard"]
    if doc.get("shards") != len(per):
        fail(f"shards={doc.get('shards')} but per_shard holds "
             f"{len(per)} entries")
    for k in TOTAL_KEYS:
        total = sum(s[k] for s in per)
        if doc.get(k) != total:
            fail(f"top-level {k}={doc.get(k)} != per-shard sum {total}")
    gaps = sum(len(s["seqno_gaps"]) for s in per)
    if doc.get("seqno_gaps") != gaps:
        fail(f"top-level seqno_gaps={doc.get('seqno_gaps')} != "
             f"per-shard gap count {gaps}")


def main():
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("report",
                    help="recovery report JSON from zkv_server "
                         "--recovery-report-out")
    ap.add_argument("--validate", action="store_true",
                    help="enforce accounting invariants; nonzero exit "
                         "on any violation")
    ap.add_argument("--expect-clean", action="store_true",
                    help="with --validate: also fail on any salvaged "
                         "bytes, seqno gaps, or warnings (for runs "
                         "that ended in a clean shutdown)")
    args = ap.parse_args()

    doc = load_report(args.report)
    per = doc["per_shard"]

    if args.validate:
        for i, s in enumerate(per):
            check_shard(i, s)
        check_totals(doc)
        if args.expect_clean and (doc["salvaged_bytes"] or
                                  doc["seqno_gaps"] or
                                  any(s["warnings"] for s in per)):
            fail("report is not clean: salvaged_bytes="
                 f"{doc['salvaged_bytes']} seqno_gaps="
                 f"{doc['seqno_gaps']}")

    print(f"recovery: {args.report}")
    print(f"  shards: {len(per)}  replayed: {doc['replayed']}  "
          f"skipped: {doc['skipped']}")
    print(f"  salvaged_bytes: {doc['salvaged_bytes']}  "
          f"seqno_gaps: {doc['seqno_gaps']}  "
          f"dropped_records: {doc['dropped_records']}")
    for s in per:
        snap = (f"snapshot {s['snapshot_records']} rec @ "
                f"{s['snapshot_watermark']}"
                if s["snapshot_loaded"] else "no snapshot")
        print(f"  shard {s['shard']}: {snap}, {s['log_segments']} "
              f"segment(s), {s['log_records']} log rec "
              f"({s['replayed']} replayed, {s['skipped']} skipped), "
              f"high water {s['high_water']}")
        for w in s["warnings"]:
            print(f"    warning: {w}")

    if args.validate:
        print("recovery_report: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
