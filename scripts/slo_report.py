#!/usr/bin/env python3
"""Renderer/validator for net_loadgen SLO-sweep reports.

Consumes the JSON report written by ``net_loadgen --json=...`` (one
run per target rate in ``--sweep-rates`` mode, docs/server.md) and
prints a GitHub-flavored Markdown throughput-vs-tail table — pipe it
into ``$GITHUB_STEP_SUMMARY`` in CI, or read it in a terminal. Under
``--validate`` it additionally enforces the open-loop accounting
invariants and exits nonzero on any violation (the same exit protocol
as trace_report.py):

  - the file is valid JSON with a non-empty ``runs`` array, and every
    run has the expected ``timing``/``stats`` blocks;
  - every scheduled arrival is accounted for:
    completed + lost_inflight == issued == ops (docs/robustness.md);
  - every point completed at least one op, and quantiles are ordered
    (p50 <= p99 <= p999);
  - loss and transport-error rates stay under --max-loss (default 1%),
    so a sweep that quietly shed load cannot pass as healthy;
  - with --expect-points N: the sweep ran exactly N rate points.

Usage:
  slo_report.py SLO.json                      # Markdown table
  slo_report.py SLO.json --validate           # CI gate
  slo_report.py SLO.json --validate --expect-points 4
"""

import argparse
import json
import sys


def fail(msg):
    print(f"slo_report: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")
    if not isinstance(doc, dict) or not isinstance(doc.get("runs"), list):
        fail(f"{path}: no runs array (not a bench JSON report)")
    if not doc["runs"]:
        fail(f"{path}: empty runs array")
    return doc


def us(ns):
    return f"{ns / 1000.0:.0f}"


def check_point(i, run, max_loss):
    """Validate one sweep point; returns a list of violation strings."""
    bad = []
    timing = run.get("timing")
    stats = run.get("stats")
    if not isinstance(timing, dict) or not isinstance(stats, dict):
        return [f"point {i}: missing timing/stats block"]

    for key in ("issued", "completed", "lost_inflight",
                "transport_errors"):
        if not isinstance(stats.get(key), (int, float)):
            bad.append(f"point {i}: stats.{key} missing")
    for key in ("ops_per_sec", "p50_ns", "p99_ns", "p999_ns"):
        if not isinstance(timing.get(key), (int, float)):
            bad.append(f"point {i}: timing.{key} missing")
    if bad:
        return bad

    issued = stats["issued"]
    completed = stats["completed"]
    lost = stats["lost_inflight"]
    ops = run.get("ops")

    # Open-loop accounting: the arrival schedule is the ground truth.
    if completed + lost != issued:
        bad.append(f"point {i}: completed {completed} + lost {lost} "
                   f"!= issued {issued}")
    if ops is not None and issued != ops:
        bad.append(f"point {i}: issued {issued} != scheduled ops {ops}")
    if completed == 0:
        bad.append(f"point {i}: no op completed")
    elif issued > 0:
        lossy = (lost + stats["transport_errors"]) / issued
        if lossy > max_loss:
            bad.append(f"point {i}: loss+transport rate {lossy:.2%} "
                       f"> --max-loss {max_loss:.2%}")
    if not (timing["p50_ns"] <= timing["p99_ns"] <= timing["p999_ns"]):
        bad.append(f"point {i}: quantiles not ordered "
                   f"(p50 {timing['p50_ns']:.0f}, "
                   f"p99 {timing['p99_ns']:.0f}, "
                   f"p999 {timing['p999_ns']:.0f})")
    return bad


def main():
    ap = argparse.ArgumentParser(
        description="Render/validate a net_loadgen SLO-sweep report")
    ap.add_argument("report", help="net_loadgen --json output")
    ap.add_argument("--validate", action="store_true",
                    help="enforce accounting invariants; nonzero exit "
                         "on any violation")
    ap.add_argument("--expect-points", type=int, default=0,
                    help="require exactly N sweep points")
    ap.add_argument("--max-loss", type=float, default=0.01,
                    help="max (lost+transport)/issued rate per point "
                         "under --validate (default 0.01)")
    args = ap.parse_args()

    doc = load(args.report)
    runs = doc["runs"]

    if args.expect_points and len(runs) != args.expect_points:
        fail(f"{len(runs)} sweep points, expected {args.expect_points}")

    first = runs[0]
    title = (f"workload={first.get('workload', '?')} "
             f"arrivals={first.get('arrivals', '?')} "
             f"connections={first.get('connections', '?')}")
    print(f"### zkv SLO sweep ({title})\n")
    print("| target ops/s | achieved ops/s | p50 (us) | p99 (us) "
          "| p99.9 (us) | completed | lost | xport err |")
    print("|---:|---:|---:|---:|---:|---:|---:|---:|")

    violations = []
    for i, run in enumerate(runs):
        violations.extend(check_point(i, run, args.max_loss))
        timing = run.get("timing", {})
        stats = run.get("stats", {})
        print(f"| {run.get('rate', 0):.0f} "
              f"| {timing.get('ops_per_sec', 0):.0f} "
              f"| {us(timing.get('p50_ns', 0))} "
              f"| {us(timing.get('p99_ns', 0))} "
              f"| {us(timing.get('p999_ns', 0))} "
              f"| {stats.get('completed', 0)} "
              f"| {stats.get('lost_inflight', 0)} "
              f"| {stats.get('transport_errors', 0)} |")
    print()

    if args.validate:
        if violations:
            for v in violations:
                print(f"slo_report: FAIL: {v}", file=sys.stderr)
            sys.exit(1)
        print("slo_report: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
