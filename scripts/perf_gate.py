#!/usr/bin/env python3
"""CI perf-regression gate for the pinned walk-heavy microbenchmark.

Runs ``microbench --benchmark_filter=^BM_WalkHeavyPinned$`` several
times, takes the median items_per_second, and compares it against the
committed baseline (results/reference/perf_baseline.json). The run
fails (exit 1) when the median falls outside the baseline's tolerance
band — by default +/-25%, wide enough to absorb shared-runner noise but
narrow enough to catch a 2x regression immediately.

Usage:
  perf_gate.py --bench build/bench/microbench             # gate a build
  perf_gate.py --bench ... --update-baseline              # recalibrate
  perf_gate.py --bench ... --inject-slowdown=2            # failure drill

The baseline MUST be calibrated on the runner class that executes the
gate (see docs/performance.md): a laptop-calibrated number is
meaningless on a CI VM. ``--update-baseline`` rewrites the baseline
from the current machine's median; commit the result from a CI run.

When GITHUB_STEP_SUMMARY is set, a markdown delta table is appended to
it so the verdict shows up in the Actions job summary.
"""

import argparse
import json
import os
import platform
import statistics
import subprocess
import sys
import tempfile

try:
    import resource
except ImportError:  # non-POSIX: no RSS telemetry, gate still works
    resource = None

BENCH_NAME = "BM_WalkHeavyPinned"
# Counter-only companions: run alongside the pinned profile so their
# user counters (e.g. BM_StoreGetOptimistic's get_optimistic fraction)
# land in the gate's table. Their throughput is NOT gated.
COMPANIONS = [
    "BM_StoreGetOptimistic",
    "BM_CodecCompress",
    "BM_StoreGetPutCompressed",
]
BASELINE = os.path.join("results", "reference", "perf_baseline.json")

# google-benchmark's own per-entry numeric fields; anything else numeric
# in a benchmark entry is a user counter and must not be dropped.
GBENCH_KEYS = {
    "family_index", "per_family_instance_index", "repetitions",
    "repetition_index", "threads", "iterations", "real_time",
    "cpu_time", "items_per_second", "bytes_per_second",
}


def user_counters(entry):
    """User counters of one benchmark JSON entry (name -> float)."""
    return {
        k: float(v)
        for k, v in entry.items()
        if isinstance(v, (int, float)) and not isinstance(v, bool)
        and k not in GBENCH_KEYS
    }


def run_once(bench, inject_slowdown):
    """One microbench run.

    Returns (items_per_second of the pinned profile, {counter: value})
    where the counters are every user counter any matched benchmark
    exported — e.g. BM_StoreGetOptimistic's get_optimistic fraction.
    Unknown counters used to be silently dropped here, which hid the
    optimistic-get fraction from the gate's table.
    """
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        out_path = tmp.name
    names = [BENCH_NAME] + COMPANIONS
    try:
        cmd = [
            bench,
            f"--benchmark_filter=^({'|'.join(names)})$",
            f"--json={out_path}",
        ]
        if inject_slowdown > 1:
            cmd.append(f"--inject-slowdown={inject_slowdown}")
        subprocess.run(cmd, check=True, stdout=subprocess.DEVNULL)
        with open(out_path) as f:
            doc = json.load(f)
    finally:
        os.unlink(out_path)
    ips = None
    counters = {}
    for b in doc.get("benchmarks", []):
        if b.get("name") not in names:
            continue
        counters.update(user_counters(b))
        if b.get("name") == BENCH_NAME:
            ips = float(b["items_per_second"])
    if ips is None:
        sys.exit(f"error: {BENCH_NAME} missing from benchmark output")
    return ips, counters


def fmt_counter(name, value):
    """Fractions (0..1 counters like get_optimistic) print as percent."""
    if 0.0 <= value <= 1.0:
        return f"{value:.1%}"
    return f"{value:,.2f}"


def write_summary(lines):
    path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not path:
        return
    with open(path, "a") as f:
        f.write("\n".join(lines) + "\n")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--bench", default=os.path.join("build", "bench",
                                                    "microbench"),
                    help="path to the microbench binary")
    ap.add_argument("--baseline", default=BASELINE,
                    help="committed baseline JSON")
    ap.add_argument("--runs", type=int, default=3,
                    help="repetitions to take the median over")
    ap.add_argument("--update-baseline", action="store_true",
                    help="rewrite the baseline from this machine's median")
    ap.add_argument("--inject-slowdown", type=int, default=1,
                    help="artificial slowdown factor (failure drill only)")
    args = ap.parse_args()

    samples = []
    counter_samples = {}
    for i in range(args.runs):
        ips, counters = run_once(args.bench, args.inject_slowdown)
        print(f"run {i + 1}/{args.runs}: {ips:,.0f} items/sec")
        samples.append(ips)
        for k, v in counters.items():
            counter_samples.setdefault(k, []).append(v)
    median = statistics.median(samples)
    print(f"median: {median:,.0f} items/sec")
    counter_medians = {
        k: statistics.median(v) for k, v in sorted(counter_samples.items())
    }
    for k, v in counter_medians.items():
        print(f"{k}: {fmt_counter(k, v)}")

    # Peak RSS across the bench child processes (Linux: KiB), so memory
    # creep in the hot paths shows up next to the throughput verdict.
    peak_rss_mib = None
    if resource is not None:
        ru = resource.getrusage(resource.RUSAGE_CHILDREN)
        scale = 1024.0 if platform.system() == "Darwin" else 1.0
        peak_rss_mib = ru.ru_maxrss * scale / 1024.0
        print(f"peak RSS (bench children): {peak_rss_mib:,.1f} MiB")

    if args.update_baseline:
        os.makedirs(os.path.dirname(args.baseline), exist_ok=True)
        doc = {
            "benchmark": BENCH_NAME,
            "items_per_second": median,
            "runs": args.runs,
            "tolerance": 0.25,
            "runner": {
                "machine": platform.machine(),
                "system": platform.system(),
                "note": "calibrate on the runner class that runs the "
                        "gate (docs/performance.md)",
            },
        }
        with open(args.baseline, "w") as f:
            json.dump(doc, f, indent=2)
            f.write("\n")
        print(f"baseline updated: {args.baseline}")
        return 0

    try:
        with open(args.baseline) as f:
            base = json.load(f)
    except FileNotFoundError:
        sys.exit(f"error: no baseline at {args.baseline}; run with "
                 "--update-baseline on the gate's runner class first")
    ref = float(base["items_per_second"])
    tol = float(base.get("tolerance", 0.25))
    delta = (median - ref) / ref
    lo, hi = ref * (1 - tol), ref * (1 + tol)
    ok = lo <= median <= hi
    verdict = "PASS" if ok else "FAIL"

    print(f"baseline: {ref:,.0f} items/sec (tolerance +/-{tol:.0%})")
    print(f"delta: {delta:+.1%} -> {verdict}")

    summary = [
        "### Perf gate: pinned walk-heavy profile",
        "",
        "| metric | value |",
        "|---|---|",
        f"| median items/sec | {median:,.0f} |",
        f"| baseline items/sec | {ref:,.0f} |",
        f"| delta | {delta:+.1%} |",
        f"| tolerance | +/-{tol:.0%} |",
    ]
    if peak_rss_mib is not None:
        summary.append(f"| peak RSS | {peak_rss_mib:,.1f} MiB |")
    for k, v in counter_medians.items():
        summary.append(f"| {k} | {fmt_counter(k, v)} |")
    summary.append(f"| verdict | **{verdict}** |")
    write_summary(summary)

    if not ok:
        direction = "regression" if median < lo else "speedup"
        print(f"error: {direction} outside the +/-{tol:.0%} band — if "
              "intentional, recalibrate with --update-baseline on the "
              "CI runner (docs/performance.md)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
