#!/usr/bin/env bash
# Full reproduction driver: builds, tests, and regenerates every table
# and figure into results/. Pass --full for the complete 72-workload /
# 8MB-array sweeps (slower); the default runs reduced-but-same-shape
# configurations. Pass --jobs=N to set the sweep-engine worker count
# (default: all cores); output is byte-identical for any N
# (docs/runner.md).
set -euo pipefail

cd "$(dirname "$0")/.."
FULL=
JOBS=$(nproc)
for arg in "$@"; do
    case "$arg" in
        --full)    FULL=--full ;;
        --jobs=*)  JOBS=${arg#--jobs=} ;;
        *) echo "usage: $0 [--full] [--jobs=N]" >&2; exit 2 ;;
    esac
done

cmake -B build -G Ninja
cmake --build build

mkdir -p results

echo "== tests =="
ctest --test-dir build --output-on-failure | tee results/tests.txt

# Benches get text into results/<name>.txt and, via --json, the runs'
# full stats trees into results/<name>.json (docs/observability.md).
run() {
    local name=$1
    shift
    echo "== $name =="
    "$@" "--jobs=$JOBS" "--json=results/$name.json" | tee "results/$name.txt"
}

run fig2_uniformity          ./build/bench/fig2_uniformity
run table2_cache_costs       ./build/bench/table2_cache_costs

if [ "$FULL" = "--full" ]; then
    run fig3_assoc_distributions ./build/bench/fig3_assoc_distributions --full
    run fig4_fig5_performance    ./build/bench/fig4_fig5_performance --workloads=all
    run bandwidth_analysis       ./build/bench/bandwidth_analysis --workloads=all
else
    run fig3_assoc_distributions ./build/bench/fig3_assoc_distributions
    run fig4_fig5_performance    ./build/bench/fig4_fig5_performance
    run bandwidth_analysis       ./build/bench/bandwidth_analysis
fi

run ablation_walk            ./build/bench/ablation_walk
run ablation_replacement     ./build/bench/ablation_replacement
run design_comparison        ./build/bench/design_comparison

# Examples produce text only (no --json flag).
runex() {
    local name=$1
    shift
    echo "== $name =="
    "$@" | tee "results/$name.txt"
}

runex quickstart             ./build/examples/quickstart
runex adaptive_assoc         ./build/examples/adaptive_assoc
runex pinned_buffering       ./build/examples/pinned_buffering
runex tlb_simulation         ./build/examples/tlb_simulation
runex stats_export           ./build/examples/stats_export results/stats_export.json

echo "All outputs in results/."
