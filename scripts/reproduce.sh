#!/usr/bin/env bash
# Full reproduction driver: builds, tests, and regenerates every table
# and figure into results/. Pass --full for the complete 72-workload /
# 8MB-array sweeps (slower); the default runs reduced-but-same-shape
# configurations. Pass --jobs=N to set the sweep-engine worker count
# (default: all cores); output is byte-identical for any N
# (docs/runner.md).
#
# Robustness knobs (docs/robustness.md): the long sweeps are journaled
# to results/<name>.zcj; after a crash or Ctrl-C, rerun with --resume
# to re-run only the missing points (output stays byte-identical).
# --job-timeout=N bounds each sweep point to N seconds of wall clock.
# The script fails loudly — with the failed drivers and point counts —
# when any sweep point fails or times out.
set -euo pipefail

cd "$(dirname "$0")/.."
FULL=
JOBS=$(nproc)
RESUME=
JOB_TIMEOUT=
for arg in "$@"; do
    case "$arg" in
        --full)           FULL=--full ;;
        --jobs=*)         JOBS=${arg#--jobs=} ;;
        --resume)         RESUME=1 ;;
        --job-timeout=*)  JOB_TIMEOUT=${arg#--job-timeout=} ;;
        *) echo "usage: $0 [--full] [--jobs=N] [--resume] [--job-timeout=seconds]" >&2
           exit 2 ;;
    esac
done

cmake -B build -G Ninja
cmake --build build

mkdir -p results

echo "== tests =="
ctest --test-dir build --output-on-failure | tee results/tests.txt

# Refuse to continue past a driver whose sweep lost points: the JSON
# report carries a sweep.ok flag exactly for this check.
check_sweep_ok() {
    python3 - "$1" "$2" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
sweep = doc.get('sweep')
if sweep is not None and not sweep.get('ok', True):
    sys.exit(f"error: {sys.argv[2]}: {sweep['failed']} sweep point(s) "
             f"failed, {sweep.get('timed_out', 0)} of them timed out — "
             f"per-point diagnostics are on stderr above")
EOF
}

# Benches get text into results/<name>.txt and, via --json, the runs'
# full stats trees into results/<name>.json (docs/observability.md).
run() {
    local name=$1
    shift
    echo "== $name =="
    if ! "$@" "--jobs=$JOBS" "--json=results/$name.json" \
            | tee "results/$name.txt"; then
        echo "error: $name exited nonzero — failed sweep points or an" \
             "unwritable output (see results/$name.txt)" >&2
        exit 1
    fi
    check_sweep_ok "results/$name.json" "$name"
}

# SweepRunner-based drivers additionally get a crash-resume journal
# (and the per-point watchdog when requested).
run_sweep() {
    local name=$1
    shift
    local extra=()
    if [ -n "$RESUME" ]; then
        extra+=("--resume=results/$name.zcj")
    else
        extra+=("--journal=results/$name.zcj")
    fi
    if [ -n "$JOB_TIMEOUT" ]; then
        extra+=("--job-timeout=$JOB_TIMEOUT")
    fi
    run "$name" "$@" "${extra[@]}"
}

run fig2_uniformity          ./build/bench/fig2_uniformity
run table2_cache_costs       ./build/bench/table2_cache_costs

if [ "$FULL" = "--full" ]; then
    run fig3_assoc_distributions ./build/bench/fig3_assoc_distributions --full
    run_sweep fig4_fig5_performance ./build/bench/fig4_fig5_performance --workloads=all
    run_sweep bandwidth_analysis    ./build/bench/bandwidth_analysis --workloads=all
else
    run fig3_assoc_distributions ./build/bench/fig3_assoc_distributions
    run_sweep fig4_fig5_performance ./build/bench/fig4_fig5_performance
    run_sweep bandwidth_analysis    ./build/bench/bandwidth_analysis
fi

run ablation_walk            ./build/bench/ablation_walk
run ablation_replacement     ./build/bench/ablation_replacement
run design_comparison        ./build/bench/design_comparison

# Examples produce text only (no --json flag).
runex() {
    local name=$1
    shift
    echo "== $name =="
    "$@" | tee "results/$name.txt"
}

runex quickstart             ./build/examples/quickstart
runex adaptive_assoc         ./build/examples/adaptive_assoc
runex pinned_buffering       ./build/examples/pinned_buffering
runex tlb_simulation         ./build/examples/tlb_simulation
runex stats_export           ./build/examples/stats_export results/stats_export.json

echo "All outputs in results/."
