#!/usr/bin/env python3
"""Renderer/validator for store_loadgen --scaling reports.

Consumes the JSON report written by ``store_loadgen --scaling
--json=...`` (docs/performance.md, "Multi-core get scaling") and prints
a GitHub-flavored Markdown thread-count-vs-throughput table — pipe it
into ``$GITHUB_STEP_SUMMARY`` in CI, or read it in a terminal. Under
``--validate`` it additionally enforces the scaling-curve invariants
and exits nonzero on any violation (the same exit protocol as
trace_report.py / slo_report.py):

  - the file is valid JSON with a top-level ``scaling`` block holding a
    non-empty ``points`` array, each point carrying threads /
    gets_per_sec / p99_ns / get_speedup;
  - the sweep includes a 1-thread baseline point;
  - every point completed at least one get (a 0-gets point means the
    mix or workload was misconfigured, not that scaling is bad);
  - with --min-ratio R and --at-threads N (default 8): the N-thread
    point's get throughput is >= R x the 1-thread point's — the CI
    scaling floor. The point is matched exactly; a sweep that never
    reached N threads fails rather than silently passing.
  - the run rows' read_path matches --expect-read-path when given (the
    gate asserts the *optimistic* path scales; a locked-path report
    passing by luck should be loud, not silent).

Usage:
  scaling_report.py SCALING.json                     # Markdown table
  scaling_report.py SCALING.json --validate          # CI gate (3x @ 8)
  scaling_report.py SCALING.json --validate --min-ratio 3 --at-threads 8
"""

import argparse
import json
import sys


def fail(msg):
    print(f"scaling_report: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")
    if not isinstance(doc, dict):
        fail(f"{path}: not a JSON object")
    scaling = doc.get("scaling")
    if not isinstance(scaling, dict) or not isinstance(
            scaling.get("points"), list):
        fail(f"{path}: no scaling.points block "
             f"(was the report written with --scaling?)")
    if not scaling["points"]:
        fail(f"{path}: empty scaling.points array")
    return doc


def main():
    ap = argparse.ArgumentParser(
        description="Render/validate a store_loadgen --scaling report")
    ap.add_argument("report", help="store_loadgen --scaling --json output")
    ap.add_argument("--validate", action="store_true",
                    help="enforce scaling invariants; nonzero exit on "
                         "any violation")
    ap.add_argument("--min-ratio", type=float, default=3.0,
                    help="required get-throughput speedup at "
                         "--at-threads vs 1 thread (default 3.0)")
    ap.add_argument("--at-threads", type=int, default=8,
                    help="thread count the ratio is asserted at "
                         "(default 8)")
    ap.add_argument("--expect-read-path", default="",
                    help="require every run row's read_path to match "
                         "(e.g. optimistic)")
    args = ap.parse_args()

    doc = load(args.report)
    scaling = doc["scaling"]
    points = scaling["points"]

    violations = []
    for i, pt in enumerate(points):
        for key in ("threads", "gets_per_sec", "p99_ns", "get_speedup"):
            if not isinstance(pt.get(key), (int, float)):
                violations.append(f"point {i}: missing/non-numeric "
                                  f"'{key}'")
    if args.expect_read_path:
        if scaling.get("read_path") != args.expect_read_path:
            violations.append(
                f"scaling.read_path is '{scaling.get('read_path')}', "
                f"expected '{args.expect_read_path}'")
        for i, run in enumerate(doc.get("runs", [])):
            rp = run.get("read_path")
            if rp is not None and rp != args.expect_read_path:
                violations.append(f"run {i}: read_path '{rp}', expected "
                                  f"'{args.expect_read_path}'")

    title = (f"read_path={scaling.get('read_path', '?')} "
             f"workload={scaling.get('workload', '?')} "
             f"gets={100.0 * scaling.get('get_frac', 0):.0f}%")
    print(f"### zkv get-throughput scaling ({title})\n")
    print("| threads | ops/s | gets/s | p99 (us) | get speedup |")
    print("|---:|---:|---:|---:|---:|")
    by_threads = {}
    for pt in points:
        t = int(pt.get("threads", 0))
        by_threads[t] = pt
        print(f"| {t} "
              f"| {pt.get('ops_per_sec', 0):.0f} "
              f"| {pt.get('gets_per_sec', 0):.0f} "
              f"| {pt.get('p99_ns', 0) / 1000.0:.1f} "
              f"| {pt.get('get_speedup', 0):.2f}x |")
    print()

    base = by_threads.get(1)
    if base is None:
        violations.append("no 1-thread baseline point in the sweep")
    elif base.get("gets_per_sec", 0) <= 0:
        violations.append("1-thread point completed no gets")
    for pt in points:
        if pt.get("gets_per_sec", 0) <= 0:
            violations.append(
                f"{int(pt.get('threads', 0))}-thread point completed "
                f"no gets")

    ratio = None
    at = by_threads.get(args.at_threads)
    if base is not None and base.get("gets_per_sec", 0) > 0 and at:
        ratio = at["gets_per_sec"] / base["gets_per_sec"]
        print(f"get throughput at {args.at_threads} threads: "
              f"{ratio:.2f}x the 1-thread baseline "
              f"(floor: {args.min_ratio:.2f}x)\n")

    if args.validate:
        if at is None:
            violations.append(
                f"no {args.at_threads}-thread point in the sweep "
                f"(threads swept: {sorted(by_threads)})")
        elif ratio is not None and ratio < args.min_ratio:
            violations.append(
                f"get throughput at {args.at_threads} threads is only "
                f"{ratio:.2f}x the 1-thread baseline "
                f"(floor {args.min_ratio:.2f}x)")
        if violations:
            for v in violations:
                print(f"scaling_report: FAIL: {v}", file=sys.stderr)
            sys.exit(1)
        print("scaling_report: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
