/**
 * @file
 * Fig. 3 — Associativity distributions of real cache designs on the six
 * benchmarks the paper plots (blackscholes, canneal, fluidanimate from
 * PARSEC; wupwise, apsi, mgrid from SPEC OMP):
 *
 *   (a) set-associative, 4 and 16 ways, bit-select indexing
 *   (b) set-associative, 4 and 16 ways, H3-hashed indexing
 *   (c) skew-associative, 4 and 16 ways
 *   (d) zcache, 4 ways, 2 and 3 levels (Z4/16, Z4/52)
 *
 * The shared L2 array under test is fed the L1-miss stream of a 32-core
 * CMP, as in the paper's methodology. For each (design, workload) the
 * harness prints CDF points of the eviction-priority distribution, its
 * mean, and the KS distance to the uniformity curve x^R.
 *
 * Expected shape (paper Section IV-C):
 *  - (a) huge per-workload spread; wupwise/apsi catastrophically worse
 *    than uniformity (most evictions at low priority);
 *  - (b) better, but still below uniformity, with workload spread;
 *  - (c)/(d) near the uniformity curve for every workload, with
 *    workload-independence — associativity tracks R, not the workload.
 *
 * --strong-hash swaps H3 for real SHA-1 indexing in the skew/zcache
 * designs — the paper's Section IV-C check that hash quality is not
 * what separates the measured curves from the uniformity assumption.
 *
 * The (design x workload) grid runs on the parallel sweep engine
 * (--jobs=N, docs/runner.md); each grid point owns its array, L1s and
 * tracker, so points are independent and the printed tables are
 * byte-identical for any job count.
 */

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "assoc/eviction_tracker.hpp"
#include "assoc/uniformity.hpp"
#include "cache/array_factory.hpp"
#include "cache/cache_model.hpp"
#include "common/stats.hpp"
#include "runner/sweep.hpp"
#include "sim/l1_cache.hpp"
#include "trace/workloads.hpp"

#include "bench_util.hpp"

using namespace zc;

namespace {

struct DesignRow
{
    std::string label;
    ArraySpec spec;
    std::uint32_t candidates; ///< n for the uniformity reference
};

struct Measurement
{
    std::vector<double> cdf;
    double mean = 0.0;
    double ks = 0.0;
    std::uint64_t samples = 0;
};

Measurement
measure(const DesignRow& d, const std::string& workload,
        std::uint64_t accesses_per_core, std::uint64_t sample_period)
{
    constexpr std::uint32_t kCores = 32;
    CacheModel model(makeArray(d.spec));
    EvictionPriorityTracker tracker(100, sample_period);
    tracker.attach(model.array());

    const WorkloadProfile& w = WorkloadRegistry::byName(workload);
    std::vector<GeneratorPtr> gens;
    std::vector<L1Cache> l1s;
    for (std::uint32_t c = 0; c < kCores; c++) {
        gens.push_back(WorkloadRegistry::makeCoreGenerator(w, c, kCores, 7));
        l1s.emplace_back(32 * 1024, 4, 64);
    }

    // Interleave cores round-robin; the array under test sees the
    // L1-miss stream (paper methodology: it is the shared L2).
    for (std::uint64_t i = 0; i < accesses_per_core; i++) {
        for (std::uint32_t c = 0; c < kCores; c++) {
            MemRecord r = gens[c]->next();
            if (l1s[c].access(r.lineAddr, false) !=
                L1Cache::LineState::Invalid) {
                continue;
            }
            l1s[c].insert(r.lineAddr, L1Cache::LineState::Exclusive, false);
            model.access(r.lineAddr);
        }
    }

    Measurement m;
    m.cdf = tracker.cdf();
    m.mean = tracker.histogram().mean();
    m.ks = ksDistance(m.cdf, uniformityCdf(d.candidates, 100));
    m.samples = tracker.samples();
    return m;
}

} // namespace

int
main(int argc, char** argv)
{
    bool strong = benchutil::flagBool(argc, argv, "strong-hash");
    bool full = benchutil::flagBool(argc, argv, "full");
    std::uint64_t blocks = benchutil::flagU64(
        argc, argv, "blocks", full ? 131072 : 32768); // 8MB vs 2MB
    std::uint64_t accesses =
        benchutil::flagU64(argc, argv, "accesses", full ? 120000 : 60000);
    std::uint64_t period = benchutil::flagU64(argc, argv, "period", 50);
    benchutil::JsonReport report(argc, argv, "fig3_assoc_distributions");

    HashKind skewHash = strong ? HashKind::Sha1 : HashKind::H3;

    auto sa = [&](std::uint32_t ways, HashKind hk, const char* label) {
        DesignRow d;
        d.label = label;
        d.spec.kind = ArrayKind::SetAssoc;
        d.spec.blocks = static_cast<std::uint32_t>(blocks);
        d.spec.ways = ways;
        d.spec.hashKind = hk;
        d.spec.policy = PolicyKind::Lru;
        d.candidates = ways;
        return d;
    };
    auto skew = [&](std::uint32_t ways, const char* label) {
        DesignRow d;
        d.label = label;
        d.spec.kind = ArrayKind::SkewAssoc;
        d.spec.blocks = static_cast<std::uint32_t>(blocks);
        d.spec.ways = ways;
        d.spec.hashKind = skewHash;
        d.spec.policy = PolicyKind::Lru;
        d.candidates = ways;
        return d;
    };
    auto zc = [&](std::uint32_t levels, const char* label) {
        DesignRow d;
        d.label = label;
        d.spec.kind = ArrayKind::ZCache;
        d.spec.blocks = static_cast<std::uint32_t>(blocks);
        d.spec.ways = 4;
        d.spec.levels = levels;
        d.spec.hashKind = skewHash;
        d.spec.policy = PolicyKind::Lru;
        d.candidates = ZArray::nominalCandidates(4, levels);
        return d;
    };

    const std::vector<std::vector<DesignRow>> panels{
        {sa(4, HashKind::BitSelect, "SA-4"),
         sa(16, HashKind::BitSelect, "SA-16")},
        {sa(4, HashKind::H3, "SA-4-h3"), sa(16, HashKind::H3, "SA-16-h3")},
        {skew(4, "Skew-4"), skew(16, "Skew-16")},
        {zc(2, "Z4/16"), zc(3, "Z4/52")},
    };
    const char* panel_names[] = {
        "(a) set-associative, bit-select index",
        "(b) set-associative, H3-hashed index",
        "(c) skew-associative",
        "(d) zcache (4 ways, 2 and 3 levels)",
    };

    const std::vector<std::string> workloads{
        "blackscholes", "canneal", "fluidanimate",
        "wupwise",      "apsi",    "mgrid",
    };

    std::printf("Fig. 3: associativity distributions (L2 = %llu blocks, "
                "%llu accesses/core, sample 1/%llu%s)\n",
                static_cast<unsigned long long>(blocks),
                static_cast<unsigned long long>(accesses),
                static_cast<unsigned long long>(period),
                strong ? ", strong hashing" : "");

    // Flatten the (design, workload) grid and measure every cell on the
    // sweep engine; the panel printout below reads completed results.
    struct Cell
    {
        const DesignRow* design;
        const std::string* workload;
    };
    std::vector<Cell> cells;
    for (const auto& panel : panels) {
        for (const auto& d : panel) {
            for (const auto& wl : workloads) cells.push_back({&d, &wl});
        }
    }
    WorkloadRegistry::prime();
    auto outcomes = runGrid<Measurement>(
        cells.size(),
        [&](std::size_t i) {
            return measure(*cells[i].design, *cells[i].workload, accesses,
                           period);
        },
        benchutil::sweepOptions(argc, argv, "fig3_assoc_distributions"));
    std::size_t failed =
        benchutil::reportGridFailures(outcomes, "fig3_assoc_distributions");

    std::size_t cell = 0;
    for (std::size_t p = 0; p < panels.size(); p++) {
        benchutil::banner(panel_names[p]);
        for (const auto& d : panels[p]) {
            std::printf("\n%s (R = %u; uniformity: mean %.3f)\n",
                        d.label.c_str(), d.candidates,
                        uniformityMean(d.candidates));
            std::printf("  %-14s %9s %9s %9s %9s %8s %8s %7s\n", "workload",
                        "cdf(.2)", "cdf(.4)", "cdf(.6)", "cdf(.8)", "mean",
                        "KS", "smpl");
            auto ideal = uniformityCdf(d.candidates, 100);
            std::printf("  %-14s %9.5f %9.5f %9.5f %9.5f %8.3f %8s %7s\n",
                        "[uniformity]", ideal[19], ideal[39], ideal[59],
                        ideal[79], uniformityMean(d.candidates), "-", "-");
            for (const auto& wl : workloads) {
                const auto& outcome = outcomes[cell++];
                const Measurement& m = outcome.result;
                if (report.enabled() && outcome.ok) {
                    JsonValue stats = JsonValue::object();
                    stats.set("candidates", JsonValue(d.candidates));
                    stats.set("samples", JsonValue(m.samples));
                    stats.set("mean", JsonValue(m.mean));
                    stats.set("ks_vs_uniform", JsonValue(m.ks));
                    JsonValue c = JsonValue::array();
                    for (double v : m.cdf) c.push(JsonValue(v));
                    stats.set("cdf", std::move(c));
                    report.add({{"design", JsonValue(d.label)},
                                {"workload", JsonValue(wl)}},
                               std::move(stats));
                }
                if (m.samples == 0) {
                    std::printf("  %-14s (no L2 evictions — working set "
                                "fits this organization)\n",
                                wl.c_str());
                    continue;
                }
                std::printf(
                    "  %-14s %9.5f %9.5f %9.5f %9.5f %8.3f %8.4f %7llu\n",
                    wl.c_str(), m.cdf[19], m.cdf[39], m.cdf[59], m.cdf[79],
                    m.mean, m.ks,
                    static_cast<unsigned long long>(m.samples));
            }
        }
    }

    std::printf("\nExpected shape: panel (a) shows large workload spread "
                "(wupwise/apsi far above uniformity CDF = far worse); "
                "(b) improves but stays above; (c)/(d) hug the uniformity "
                "row for every workload.\n");
    return (report.writeIfRequested() && failed == 0) ? 0 : 1;
}
