/**
 * @file
 * Shared helpers for the report harnesses: tiny flag parser, table
 * formatting, the --json telemetry writer, and the glue between the
 * parallel sweep engine (src/runner, docs/runner.md) and bench output.
 * Each bench binary regenerates one of the paper's tables or figures as
 * text (rows/series), so results can be diffed against EXPERIMENTS.md;
 * with --json=<path> it additionally serializes the runs' full stats
 * trees for plotting and regression tooling (docs/observability.md).
 *
 * Every driver accepts --jobs=N (0/absent = hardware concurrency) and
 * --no-progress; the sweep engine guarantees text and JSON output are
 * identical for any N. Sweep drivers additionally accept
 * --job-timeout=<seconds> (per-point watchdog), --retry-backoff-ms=<ms>
 * (exponential retry backoff), and --journal=<path> / --resume=<path>
 * (crash-resumable sweeps, docs/robustness.md).
 *
 * Exit-code protocol (docs/robustness.md):
 *   0  every sweep point succeeded and all requested outputs were
 *      written;
 *   1  one or more grid points failed (their errors are on stderr and
 *      counted under "sweep.failed" in --json output) or an output file
 *      could not be written;
 *   2  usage error — unknown flag value (policy/design name) or a
 *      structured journal refusal (corrupt header, wrong grid).
 */

#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "common/json.hpp"
#include "common/perf_telemetry.hpp"
#include "runner/sweep.hpp"

namespace zc::benchutil {

/** "--key=value" flag lookup; returns fallback when absent. */
inline std::string
flag(int argc, char** argv, const std::string& key,
     const std::string& fallback)
{
    std::string prefix = "--" + key + "=";
    for (int i = 1; i < argc; i++) {
        if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
            return std::string(argv[i] + prefix.size());
        }
    }
    return fallback;
}

inline std::uint64_t
flagU64(int argc, char** argv, const std::string& key,
        std::uint64_t fallback)
{
    std::string v = flag(argc, argv, key, "");
    return v.empty() ? fallback : std::strtoull(v.c_str(), nullptr, 10);
}

inline bool
flagBool(int argc, char** argv, const std::string& key)
{
    std::string bare = "--" + key;
    for (int i = 1; i < argc; i++) {
        if (bare == argv[i]) return true;
    }
    return flag(argc, argv, key, "") == "1" ||
           flag(argc, argv, key, "") == "true";
}

/** Section banner. */
inline void
banner(const std::string& title)
{
    std::printf("\n==== %s ====\n", title.c_str());
}

/**
 * Sweep-engine options from the shared flags: --jobs=N, --no-progress,
 * --job-timeout=<seconds>, --retry-backoff-ms=<ms>, --journal=<path>,
 * --resume=<path>. @p label names the sweep in the progress line.
 */
inline zc::SweepOptions
sweepOptions(int argc, char** argv, const std::string& label)
{
    zc::SweepOptions o;
    o.jobs = static_cast<unsigned>(flagU64(argc, argv, "jobs", 0));
    o.progress = !flagBool(argc, argv, "no-progress");
    o.label = label;
    o.jobTimeoutMs = flagU64(argc, argv, "job-timeout", 0) * 1000;
    o.retryBackoffMs = flagU64(argc, argv, "retry-backoff-ms", 0);
    o.journalPath = flag(argc, argv, "journal", "");
    o.resumePath = flag(argc, argv, "resume", "");
    return o;
}

/**
 * SweepRunner::run with the structured-refusal contract of the CLI:
 * a journal that cannot be created or resumed (corrupt header, grid
 * fingerprint mismatch) prints the diagnostic and exits 2 — a usage
 * error, distinct from exit 1's "some points failed".
 */
inline std::vector<zc::RunOutcome>
runSweep(const zc::SweepRunner& runner, const zc::SweepSpec& spec)
{
    try {
        return runner.run(spec);
    } catch (const zc::StatusError& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        std::exit(2);
    }
}

/**
 * Stderr note per failed grid point, for benches driving runGrid
 * directly; returns the failure count (nonzero => exit code 1).
 */
template <typename Result>
inline std::size_t
reportGridFailures(const std::vector<zc::GridOutcome<Result>>& outcomes,
                   const std::string& label)
{
    std::size_t failures = 0;
    for (const auto& o : outcomes) {
        if (o.ok) continue;
        failures++;
        std::fprintf(stderr,
                     "%s: grid point %zu failed after %u attempts: %s\n",
                     label.c_str(), o.index, o.attempts, o.error.c_str());
    }
    return failures;
}

/**
 * Accumulates run records for the --json=<path> output of a bench
 * binary. Text stdout is untouched; the JSON file is written once at
 * the end (writeIfRequested in a destructor would hide I/O errors, so
 * benches call it explicitly). Layout:
 *
 *   { "report": <name>, "perf": { <throughput counters> },
 *     "runs": [ { <tags...>, "stats": <tree> }, ... ] }
 *
 * where <tree> is the RunResult::stats dump of one experiment.
 *
 * "perf" (common/perf_telemetry.hpp) carries the report's wall clock,
 * simulated accesses/sec, walk candidates/sec and peak RSS. It is the
 * ONLY nondeterministic block in the file: tooling that byte-compares
 * reports across --jobs values or journal resumes must drop it first
 * (the CI workflow does), and the perf-regression gate reads only it.
 */
class JsonReport
{
  public:
    JsonReport(int argc, char** argv, const std::string& name)
        : path_(flag(argc, argv, "json", "")), name_(name)
    {
    }

    bool enabled() const { return !path_.empty(); }

    /**
     * Append one run: @p tags identify it within the report (workload,
     * design, ...), @p stats is the run's full stats tree.
     */
    void
    add(std::vector<std::pair<std::string, JsonValue>> tags, JsonValue stats)
    {
        if (!enabled()) return;
        perf_.addRun(stats);
        JsonValue rec = JsonValue::object();
        for (auto& [k, v] : tags) rec.set(k, std::move(v));
        rec.set("stats", std::move(stats));
        runs_.push_back(std::move(rec));
    }

    /** The report's throughput meter (running since construction). */
    PerfMeter& perf() { return perf_; }

    /**
     * Append a whole sweep's outcomes in grid order (failed points are
     * skipped — their absence plus the "failed" count below records
     * them). Grid order is what makes the JSON independent of --jobs.
     */
    void
    addSweep(const zc::SweepSpec& spec,
             const std::vector<zc::RunOutcome>& outcomes)
    {
        if (!enabled()) return;
        sweepPoints_ += spec.size();
        for (const auto& o : outcomes) {
            if (o.timedOut) sweepTimedOut_++;
            if (!o.ok) {
                sweepFailed_++;
                continue;
            }
            add(spec.points[o.index].tags, o.result.stats);
        }
        haveSweep_ = true;
    }

    /**
     * Attach an extra named top-level block (e.g. store_loadgen's
     * "scaling" summary). Reserved names (report/perf/sweep/runs) are
     * the caller's responsibility to avoid; later sets win.
     */
    void
    setBlock(const std::string& key, JsonValue block)
    {
        if (!enabled()) return;
        blocks_.emplace_back(key, std::move(block));
    }

    /** Write the report; returns false (with a stderr note) on failure. */
    bool
    writeIfRequested()
    {
        if (!enabled()) return true;
        JsonValue doc = JsonValue::object();
        doc.set("report", JsonValue(name_));
        doc.set("perf", perf_.toJson());
        for (auto& [k, v] : blocks_) doc.set(k, std::move(v));
        if (haveSweep_) {
            JsonValue sweep = JsonValue::object();
            sweep.set("points", JsonValue(std::uint64_t{sweepPoints_}));
            sweep.set("failed", JsonValue(std::uint64_t{sweepFailed_}));
            sweep.set("timed_out", JsonValue(std::uint64_t{sweepTimedOut_}));
            // Regression tooling keys off this single flag instead of
            // re-deriving it from the counts.
            sweep.set("ok", JsonValue(sweepFailed_ == 0));
            doc.set("sweep", std::move(sweep));
        }
        JsonValue arr = JsonValue::array();
        for (auto& r : runs_) arr.push(std::move(r));
        doc.set("runs", std::move(arr));
        std::ofstream out(path_);
        if (!out) {
            std::fprintf(stderr, "error: cannot open %s for writing\n",
                         path_.c_str());
            return false;
        }
        out << doc.str(2) << "\n";
        std::fprintf(stderr, "wrote JSON report: %s (%zu runs)\n",
                     path_.c_str(), runs_.size());
        return out.good();
    }

  private:
    std::string path_;
    std::string name_;
    PerfMeter perf_;
    std::vector<JsonValue> runs_;
    std::vector<std::pair<std::string, JsonValue>> blocks_;
    std::uint64_t sweepPoints_ = 0;
    std::uint64_t sweepFailed_ = 0;
    std::uint64_t sweepTimedOut_ = 0;
    bool haveSweep_ = false;
};

} // namespace zc::benchutil
