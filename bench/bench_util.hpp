/**
 * @file
 * Shared helpers for the report harnesses: tiny flag parser and table
 * formatting. Each bench binary regenerates one of the paper's tables
 * or figures as text (rows/series), so results can be diffed against
 * EXPERIMENTS.md.
 */

#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace zc::benchutil {

/** "--key=value" flag lookup; returns fallback when absent. */
inline std::string
flag(int argc, char** argv, const std::string& key,
     const std::string& fallback)
{
    std::string prefix = "--" + key + "=";
    for (int i = 1; i < argc; i++) {
        if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
            return std::string(argv[i] + prefix.size());
        }
    }
    return fallback;
}

inline std::uint64_t
flagU64(int argc, char** argv, const std::string& key,
        std::uint64_t fallback)
{
    std::string v = flag(argc, argv, key, "");
    return v.empty() ? fallback : std::strtoull(v.c_str(), nullptr, 10);
}

inline bool
flagBool(int argc, char** argv, const std::string& key)
{
    std::string bare = "--" + key;
    for (int i = 1; i < argc; i++) {
        if (bare == argv[i]) return true;
    }
    return flag(argc, argv, key, "") == "1" ||
           flag(argc, argv, key, "") == "true";
}

/** Section banner. */
inline void
banner(const std::string& title)
{
    std::printf("\n==== %s ====\n", title.c_str());
}

} // namespace zc::benchutil
