/**
 * @file
 * Compressed-tier evaluation (docs/compression.md): miss rate vs
 * effective capacity for extra-tag compressed arrays at EQUAL data
 * byte budget.
 *
 * Every design in a run gets the same data store — `--data-blocks`
 * uncompressed lines' worth of bytes. The uncompressed zcache exposes
 * exactly that many tag positions; a compressed design with
 * extraTagRatio=r exposes r times as many tags over the same bytes,
 * and converts compression ratio into extra resident lines. Sweeping
 * the footprint traces out each design's miss-rate curve; where the
 * footprint lands between the physical and effective capacities, the
 * compressed zcache's curve sits strictly below the uncompressed
 * one — the acceptance property tests/test_compress.cpp pins down.
 *
 * Grid: design in {z, cz} x extraTagRatio x codec (cz only) x
 * footprint. Line content is synthesized by the ContentModel — a pure
 * function of (address, seed) — so curves are exactly reproducible.
 *
 * Flags:
 *   --data-blocks=2048    data budget, in uncompressed lines
 *   --ways=4 --levels=2   zcache geometry (both designs)
 *   --ratios=1,2,4        extraTagRatio values for the compressed rows
 *   --codecs=none,bdi     codecs for the compressed rows
 *   --footprints=0.5,1,1.5,2,3   footprint as a multiple of data-blocks
 *   --accesses=600000     references per point
 *   --zero=20 --repeat=20 --delta=40   content-class percents
 *                         (remainder = incompressible random)
 *   --line-bytes=64       modeled line size
 *   --seed=17             traffic + content seed
 *   --json=<path>         standard JSON report; each run carries
 *                         design/codec/extra_tag_ratio/footprint plus
 *                         miss_rate, compression ratio and effective
 *                         capacity (scripts in CI schema-check this)
 *
 * Exit codes (bench protocol): 0 clean, 1 failed points or unwritable
 * output, 2 usage error.
 */

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "cache/array_factory.hpp"
#include "cache/cache_model.hpp"
#include "common/stats_registry.hpp"
#include "runner/sweep.hpp"
#include "trace/generator.hpp"

#include "bench_util.hpp"

using namespace zc;
using namespace zc::benchutil;

namespace {

struct Point
{
    std::string design; ///< row label (spec.label())
    ArraySpec spec;
    bool compressed = false;
    double footprintMult = 1.0;
    std::uint64_t footprint = 0;
};

struct PointResult
{
    double missRate = 0.0;
    std::uint64_t evictions = 0;
    std::uint64_t extraEvictions = 0;
    std::uint64_t relocations = 0;

    /** Compressed rows only (zeros otherwise). */
    double compressionRatio = 0.0;
    double effectiveCapacityLines = 0.0;
    std::uint64_t occupiedBytes = 0;
    std::uint64_t dataBudgetBytes = 0;
};

PointResult
runPoint(const Point& p, std::uint64_t accesses, std::uint64_t seed)
{
    CacheModel m(makeArray(p.spec));

    // Hot zipf over the footprint: misses are capacity-driven, so the
    // curve moves exactly where effective capacity does.
    ZipfGenerator gen(0, p.footprint, 0.9, seed);
    for (std::uint64_t i = 0; i < accesses; i++) {
        m.access(gen.next().lineAddr);
    }

    PointResult r;
    r.missRate = m.stats().missRate();
    r.evictions = m.stats().evictions;
    r.extraEvictions = m.stats().extraEvictions;
    r.relocations = m.stats().relocations;
    if (p.compressed) {
        const auto& cz =
            static_cast<const CompressedZArray&>(m.array());
        const SizeMirror& mir = cz.sizeMirror();
        r.dataBudgetBytes = cz.dataBudgetBytes();
        r.occupiedBytes = mir.occupiedBytes();
        if (mir.storedBytesTotal() > 0) {
            r.compressionRatio =
                static_cast<double>(mir.rawBytesTotal()) /
                static_cast<double>(mir.storedBytesTotal());
        }
        // Lines the byte budget holds at the observed ratio, capped by
        // the tag count — extra tags are the other capacity ceiling.
        double lines = static_cast<double>(r.dataBudgetBytes) /
                       static_cast<double>(p.spec.lineBytes) *
                       (r.compressionRatio > 0.0 ? r.compressionRatio
                                                 : 1.0);
        double tags = static_cast<double>(p.spec.blocks);
        r.effectiveCapacityLines = lines < tags ? lines : tags;
    } else {
        r.dataBudgetBytes = static_cast<std::uint64_t>(p.spec.blocks) *
                            p.spec.lineBytes;
        r.effectiveCapacityLines = static_cast<double>(p.spec.blocks);
    }
    return r;
}

std::vector<double>
parseDoubleList(const std::string& csv)
{
    std::vector<double> out;
    std::size_t pos = 0;
    while (pos <= csv.size()) {
        std::size_t comma = csv.find(',', pos);
        if (comma == std::string::npos) comma = csv.size();
        std::string item = csv.substr(pos, comma - pos);
        if (!item.empty()) out.push_back(std::atof(item.c_str()));
        pos = comma + 1;
    }
    return out;
}

std::vector<std::string>
parseStrList(const std::string& csv)
{
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos <= csv.size()) {
        std::size_t comma = csv.find(',', pos);
        if (comma == std::string::npos) comma = csv.size();
        std::string item = csv.substr(pos, comma - pos);
        if (!item.empty()) out.push_back(item);
        pos = comma + 1;
    }
    return out;
}

} // namespace

int
main(int argc, char** argv)
{
    std::uint32_t data_blocks = static_cast<std::uint32_t>(
        flagU64(argc, argv, "data-blocks", 2048));
    std::uint32_t ways =
        static_cast<std::uint32_t>(flagU64(argc, argv, "ways", 4));
    std::uint32_t levels =
        static_cast<std::uint32_t>(flagU64(argc, argv, "levels", 2));
    std::uint32_t line_bytes = static_cast<std::uint32_t>(
        flagU64(argc, argv, "line-bytes", 64));
    std::uint64_t accesses = flagU64(argc, argv, "accesses", 600000);
    std::uint64_t seed = flagU64(argc, argv, "seed", 17);
    auto ratios = parseDoubleList(flag(argc, argv, "ratios", "1,2,4"));
    auto codec_names =
        parseStrList(flag(argc, argv, "codecs", "none,bdi"));
    auto footprints = parseDoubleList(
        flag(argc, argv, "footprints", "0.5,1,1.5,2,3"));

    ContentModel content;
    content.zeroPct =
        static_cast<std::uint32_t>(flagU64(argc, argv, "zero", 20));
    content.repeatPct =
        static_cast<std::uint32_t>(flagU64(argc, argv, "repeat", 20));
    content.deltaPct =
        static_cast<std::uint32_t>(flagU64(argc, argv, "delta", 40));
    content.seed = seed ^ 0xc0deULL;
    if (Status s = content.validate(); !s.isOk()) {
        std::fprintf(stderr, "error: %s\n", s.str().c_str());
        return 2;
    }

    std::vector<CodecKind> codecs;
    for (const std::string& name : codec_names) {
        auto k = parseCodecKind(name);
        if (!k) {
            std::fprintf(stderr, "error: %s\n", k.status().str().c_str());
            return 2;
        }
        codecs.push_back(*k);
    }
    if (ratios.empty() || footprints.empty() || codecs.empty()) {
        std::fprintf(stderr, "error: --ratios, --codecs and "
                             "--footprints must be non-empty\n");
        return 2;
    }

    // Designs at EQUAL data budget: the plain zcache baseline plus one
    // compressed row per (ratio, codec). ratio=1 rows keep the same
    // tag count as the baseline (the bit-identity configuration);
    // ratio=r rows expose r*data_blocks tags over the same bytes.
    struct Design
    {
        ArraySpec spec;
        bool compressed = false;
    };
    std::vector<Design> designs;
    {
        ArraySpec base;
        base.kind = ArrayKind::ZCache;
        base.blocks = data_blocks;
        base.ways = ways;
        base.levels = levels;
        base.policy = PolicyKind::Lru;
        base.seed = seed ^ 0x5eedULL;
        designs.push_back({base, false});
        for (double ratio_d : ratios) {
            auto ratio = static_cast<std::uint32_t>(ratio_d);
            if (ratio == 0) continue;
            for (CodecKind codec : codecs) {
                ArraySpec s = base;
                s.kind = ArrayKind::CompressedZ;
                s.blocks = data_blocks * ratio;
                s.extraTagRatio = ratio;
                s.lineBytes = line_bytes;
                s.codec = codec;
                s.content = content;
                designs.push_back({s, true});
            }
        }
    }

    std::vector<Point> grid;
    for (const Design& d : designs) {
        for (double mult : footprints) {
            Point p;
            p.spec = d.spec;
            p.compressed = d.compressed;
            p.design = d.spec.label();
            p.footprintMult = mult;
            p.footprint = static_cast<std::uint64_t>(
                mult * static_cast<double>(data_blocks));
            if (p.footprint == 0) p.footprint = 1;
            grid.push_back(p);
        }
    }

    JsonReport report(argc, argv, "compressed_curves");

    auto outcomes = runGrid<PointResult>(
        grid.size(),
        [&](std::size_t i) { return runPoint(grid[i], accesses, seed); },
        sweepOptions(argc, argv, "compressed_curves"));
    std::size_t failed =
        reportGridFailures(outcomes, "compressed_curves");

    banner("miss rate vs effective capacity at equal data budget (" +
           std::to_string(data_blocks) + " lines of " +
           std::to_string(line_bytes) + "B, " + content.label() + ")");
    std::printf("%-16s %10s %10s %9s %8s %10s %10s\n", "design",
                "footprint", "missrate", "ratio", "eff_cap",
                "evictions", "extra_ev");
    for (const auto& o : outcomes) {
        if (!o.ok) continue;
        const Point& p = grid[o.index];
        const PointResult& r = o.result;
        std::printf("%-16s %10" PRIu64 " %10.4f %9.3f %8.0f %10" PRIu64
                    " %10" PRIu64 "\n",
                    p.design.c_str(), p.footprint, r.missRate,
                    r.compressionRatio, r.effectiveCapacityLines,
                    r.evictions, r.extraEvictions);

        JsonValue stats = JsonValue::object();
        stats.set("miss_rate", JsonValue(r.missRate));
        stats.set("evictions", JsonValue(r.evictions));
        stats.set("extra_evictions", JsonValue(r.extraEvictions));
        stats.set("relocations", JsonValue(r.relocations));
        stats.set("compression_ratio", JsonValue(r.compressionRatio));
        stats.set("effective_capacity_lines",
                  JsonValue(r.effectiveCapacityLines));
        stats.set("occupied_bytes", JsonValue(r.occupiedBytes));
        stats.set("data_budget_bytes", JsonValue(r.dataBudgetBytes));
        report.add(
            {
                {"design", JsonValue(p.design)},
                {"compressed", JsonValue(p.compressed)},
                {"codec",
                 JsonValue(std::string(
                     p.compressed ? codecKindName(p.spec.codec)
                                  : "none"))},
                {"extra_tag_ratio",
                 JsonValue(std::uint64_t{
                     p.compressed ? p.spec.extraTagRatio : 1})},
                {"footprint", JsonValue(p.footprint)},
                {"footprint_mult", JsonValue(p.footprintMult)},
                {"accesses", JsonValue(accesses)},
                {"data_blocks", JsonValue(std::uint64_t{data_blocks})},
                {"line_bytes", JsonValue(std::uint64_t{line_bytes})},
                {"content", JsonValue(content.label())},
            },
            std::move(stats));
    }

    std::printf("\nExpected shape: with compressible content the "
                "extra-tag BDI rows hold more resident lines than the "
                "data store could fit raw, so their curves sit below "
                "the uncompressed zcache wherever the footprint "
                "exceeds the physical capacity but not the effective "
                "one; the null codec collapses to the baseline.\n");

    bool wrote = report.writeIfRequested();
    if (failed > 0 || !wrote) return 1;
    return 0;
}
