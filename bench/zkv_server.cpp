/**
 * @file
 * zkv_server: the networked zkv daemon (src/net, docs/server.md) — an
 * epoll event loop serving the wire protocol over TCP with batched
 * shard dispatch into a ZkvStore.
 *
 * Flags:
 *   --host=127.0.0.1       bind address
 *   --port=0               TCP port; 0 = kernel-assigned ephemeral
 *                          (the hermetic-CI mode; pair with
 *                          --port-file so clients learn the port)
 *   --port-file=<path>     write the resolved port as one line
 *   --shards=4 --array=z --ways=4 --cands=0 --blocks=4096 --levels=2
 *   --policy=lru --lock=mutex --seed=1     store shape (docs/store.md)
 *   --max-conns=1024       concurrent connection ceiling
 *   --drain-timeout-ms=2000  grace budget after SIGTERM/SIGINT
 *   --duration-s=N         self-shutdown after N seconds (0 = run
 *                          until a signal; tests use SIGTERM)
 *   --stats-out=<path>     full stats-registry JSON written at exit
 *   --fault=<site[:after[:count]]>  arm a fault-injection site
 *                          (net.accept/net.read/net.write/net.frame,
 *                          store.walk, ... — docs/robustness.md);
 *                          repeatable via comma separation
 *
 * Live telemetry (docs/telemetry.md):
 *   --trace-out=<path>     Chrome trace-event JSON (net phase spans)
 *   --metrics-out=<path>   windowed metrics NDJSON
 *   --prom-out=<path>      Prometheus text exposition
 *   --metrics-interval-ms=N --ring-cap=N
 *
 * SIGTERM/SIGINT ring the server's eventfd doorbell (async-signal-
 * safe) and the loop drains: buffered requests execute, their
 * responses flush, then connections close. Exit 0 after a clean
 * drain, 1 on a serve/teardown error, 2 on a usage error.
 */

#include <csignal>
#include <cstdio>
#include <string>

#include <atomic>
#include <fstream>
#include <thread>

#include "bench_util.hpp"
#include "common/fault_injection.hpp"
#include "net/server.hpp"

namespace {

using namespace zc;
using namespace zc::benchutil;

std::atomic<net::ZkvServer*> g_server{nullptr};

void
onSignal(int)
{
    net::ZkvServer* srv = g_server.load(std::memory_order_acquire);
    if (srv != nullptr) srv->shutdown();
}

/** "site[:after[:count]]", comma-separated list. */
void
armFaults(const std::string& spec_csv)
{
    std::size_t pos = 0;
    while (pos <= spec_csv.size()) {
        std::size_t comma = spec_csv.find(',', pos);
        if (comma == std::string::npos) comma = spec_csv.size();
        std::string item = spec_csv.substr(pos, comma - pos);
        pos = comma + 1;
        if (item.empty()) continue;
        FaultSpec fs;
        std::size_t c1 = item.find(':');
        std::string site = item.substr(0, c1);
        if (c1 != std::string::npos) {
            std::size_t c2 = item.find(':', c1 + 1);
            fs.afterHits = std::strtoull(
                item.substr(c1 + 1, c2 - c1 - 1).c_str(), nullptr, 10);
            if (c2 != std::string::npos) {
                fs.failCount = std::strtoull(
                    item.substr(c2 + 1).c_str(), nullptr, 10);
            }
        }
        FaultInjection::enable(site, fs);
        std::fprintf(stderr,
                     "zkv_server: armed fault site '%s' (after=%llu "
                     "count=%llu)\n",
                     site.c_str(),
                     static_cast<unsigned long long>(fs.afterHits),
                     static_cast<unsigned long long>(fs.failCount));
    }
}

} // namespace

int
main(int argc, char** argv)
{
    net::ZkvServerConfig cfg;
    cfg.host = flag(argc, argv, "host", "127.0.0.1");
    cfg.port = static_cast<std::uint16_t>(flagU64(argc, argv, "port", 0));
    cfg.store.shards =
        static_cast<std::uint32_t>(flagU64(argc, argv, "shards", 4));
    std::string array_name = flag(argc, argv, "array", "z");
    if (array_name == "z") {
        cfg.store.array.kind = ArrayKind::ZCache;
    } else if (array_name == "sa") {
        cfg.store.array.kind = ArrayKind::SetAssoc;
    } else if (array_name == "skew") {
        cfg.store.array.kind = ArrayKind::SkewAssoc;
    } else {
        std::fprintf(stderr,
                     "error: unknown --array '%s' (valid: z, sa, skew)\n",
                     array_name.c_str());
        return 2;
    }
    cfg.store.array.blocks =
        static_cast<std::uint32_t>(flagU64(argc, argv, "blocks", 4096));
    cfg.store.array.ways =
        static_cast<std::uint32_t>(flagU64(argc, argv, "ways", 4));
    cfg.store.array.levels =
        static_cast<std::uint32_t>(flagU64(argc, argv, "levels", 2));
    cfg.store.array.maxCandidates =
        static_cast<std::uint32_t>(flagU64(argc, argv, "cands", 0));
    auto policy = parsePolicyKind(flag(argc, argv, "policy", "lru"));
    if (!policy) {
        std::fprintf(stderr, "error: %s\n",
                     policy.status().str().c_str());
        return 2;
    }
    cfg.store.array.policy = *policy;
    cfg.store.array.seed = flagU64(argc, argv, "seed", 1);
    std::string lock_name = flag(argc, argv, "lock", "mutex");
    if (lock_name != "mutex" && lock_name != "spin") {
        std::fprintf(stderr,
                     "error: unknown --lock '%s' (valid: mutex, spin)\n",
                     lock_name.c_str());
        return 2;
    }
    cfg.store.lock = lock_name == "spin" ? ShardLockKind::Spin
                                         : ShardLockKind::Mutex;
    cfg.maxConnections = static_cast<std::uint32_t>(
        flagU64(argc, argv, "max-conns", 1024));
    cfg.drainTimeoutMs = static_cast<std::uint32_t>(
        flagU64(argc, argv, "drain-timeout-ms", 2000));
    cfg.obs.tracePath = flag(argc, argv, "trace-out", "");
    cfg.obs.metricsPath = flag(argc, argv, "metrics-out", "");
    cfg.obs.promPath = flag(argc, argv, "prom-out", "");
    cfg.obs.metricsIntervalMs = static_cast<std::uint32_t>(
        flagU64(argc, argv, "metrics-interval-ms", 100));
    cfg.obs.ringCapacity = static_cast<std::uint32_t>(
        flagU64(argc, argv, "ring-cap", 1u << 16));

    std::string port_file = flag(argc, argv, "port-file", "");
    std::string stats_out = flag(argc, argv, "stats-out", "");
    std::uint64_t duration_s = flagU64(argc, argv, "duration-s", 0);
    std::string faults = flag(argc, argv, "fault", "");
    if (!faults.empty()) armFaults(faults);

    auto srv_or = net::ZkvServer::create(cfg);
    if (!srv_or) {
        std::fprintf(stderr, "error: %s\n",
                     srv_or.status().str().c_str());
        return srv_or.status().code() == ErrorCode::InvalidArgument ? 2
                                                                    : 1;
    }
    std::unique_ptr<net::ZkvServer> srv = std::move(*srv_or);

    if (!port_file.empty()) {
        std::ofstream out(port_file);
        out << srv->port() << "\n";
        if (!out.good()) {
            std::fprintf(stderr, "error: cannot write --port-file %s\n",
                         port_file.c_str());
            return 1;
        }
    }
    std::fprintf(stderr, "zkv_server: listening on %s:%u (%s, %u "
                         "shards, lock=%s)\n",
                 cfg.host.c_str(), srv->port(),
                 cfg.store.array.label().c_str(), cfg.store.shards,
                 shardLockKindName(cfg.store.lock));

    g_server.store(srv.get(), std::memory_order_release);
    std::signal(SIGTERM, onSignal);
    std::signal(SIGINT, onSignal);

    std::thread timer;
    if (duration_s > 0) {
        net::ZkvServer* raw = srv.get();
        timer = std::thread([raw, duration_s] {
            std::this_thread::sleep_for(
                std::chrono::seconds(duration_s));
            raw->shutdown();
        });
    }

    Status serve_status = srv->serve();
    if (timer.joinable()) timer.join();
    g_server.store(nullptr, std::memory_order_release);

    net::ZkvServerStats st = srv->stats();
    std::fprintf(stderr,
                 "zkv_server: served %llu frames (%llu ops in %llu "
                 "batches, %llu pings) over %llu connections; drained "
                 "%llu, aborted %llu\n",
                 static_cast<unsigned long long>(st.framesIn),
                 static_cast<unsigned long long>(st.batchedOps),
                 static_cast<unsigned long long>(st.batches),
                 static_cast<unsigned long long>(st.pings),
                 static_cast<unsigned long long>(st.accepted),
                 static_cast<unsigned long long>(st.drained),
                 static_cast<unsigned long long>(st.drainAborted));

    if (!stats_out.empty()) {
        StatsRegistry reg;
        srv->registerStats(reg.root());
        if (!reg.writeJsonFile(stats_out)) {
            std::fprintf(stderr, "error: cannot write --stats-out %s\n",
                         stats_out.c_str());
            return 1;
        }
    }

    if (!serve_status.isOk()) {
        std::fprintf(stderr, "error: %s\n", serve_status.str().c_str());
        return 1;
    }
    return 0;
}
