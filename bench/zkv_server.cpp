/**
 * @file
 * zkv_server: the networked zkv daemon (src/net, docs/server.md) — an
 * epoll event loop serving the wire protocol over TCP with batched
 * shard dispatch into a ZkvStore.
 *
 * Flags:
 *   --host=127.0.0.1       bind address
 *   --port=0               TCP port; 0 = kernel-assigned ephemeral
 *                          (the hermetic-CI mode; pair with
 *                          --port-file so clients learn the port)
 *   --port-file=<path>     write the resolved port as one line
 *   --shards=4 --array=z --ways=4 --cands=0 --blocks=4096 --levels=2
 *   --policy=lru --lock=mutex --seed=1     store shape (docs/store.md)
 *   --value-bytes[=CAP]    bytes mode (docs/compression.md): values
 *                          are variable-length byte payloads up to CAP
 *                          bytes (default 224, the frame cap), stored
 *                          compressed; clients must speak bytes-mode
 *                          frames (net_loadgen --value-bytes)
 *   --codec=bdi            bytes-mode value codec: bdi | none
 *   --max-conns=1024       concurrent connection ceiling
 *   --drain-timeout-ms=2000  grace budget after SIGTERM/SIGINT
 *   --duration-s=N         self-shutdown after N seconds (0 = run
 *                          until a signal; tests use SIGTERM)
 *   --stats-out=<path>     full stats-registry JSON written at exit
 *   --fault=<site[:after[:count]]>  arm a fault-injection site
 *                          (net.accept/net.read/net.write/net.frame,
 *                          store.walk, persist.append, ... —
 *                          docs/robustness.md); repeatable via comma
 *                          separation
 *
 * Durability (docs/durability.md; default off):
 *   --data-dir=<path>      enable the persist tier rooted here; prior
 *                          state is recovered before the listener
 *                          accepts, and the op log drains before exit
 *   --fsync=always         always | interval | never
 *   --fsync-interval-ms=50 group-commit window for --fsync=interval
 *   --snapshot-every-ops=N compaction snapshot cadence (0 = never)
 *   --persist-queue-cap=N  per-shard writer queue depth (default 4096)
 *   --persist-backpressure=block   block | drop
 *   --recovery-report-out=<path>   write the recovery report JSON
 *                          (scripts/recovery_report.py validates it)
 *
 * Live telemetry (docs/telemetry.md):
 *   --trace-out=<path>     Chrome trace-event JSON (net phase spans)
 *   --metrics-out=<path>   windowed metrics NDJSON
 *   --prom-out=<path>      Prometheus text exposition
 *   --metrics-interval-ms=N --ring-cap=N
 *
 * SIGTERM/SIGINT ring the server's eventfd doorbell (async-signal-
 * safe) and the loop drains: buffered requests execute, their
 * responses flush, then connections close. Exit 0 after a clean
 * drain, 1 on a serve/teardown error, 2 on a usage error.
 */

#include <csignal>
#include <cstdio>
#include <string>

#include <atomic>
#include <condition_variable>
#include <fstream>
#include <mutex>
#include <thread>

#include "bench_util.hpp"
#include "common/fault_injection.hpp"
#include "net/server.hpp"

namespace {

using namespace zc;
using namespace zc::benchutil;

std::atomic<net::ZkvServer*> g_server{nullptr};

void
onSignal(int)
{
    net::ZkvServer* srv = g_server.load(std::memory_order_acquire);
    if (srv != nullptr) srv->shutdown();
}

/** "site[:after[:count]]", comma-separated list. */
void
armFaults(const std::string& spec_csv)
{
    std::size_t pos = 0;
    while (pos <= spec_csv.size()) {
        std::size_t comma = spec_csv.find(',', pos);
        if (comma == std::string::npos) comma = spec_csv.size();
        std::string item = spec_csv.substr(pos, comma - pos);
        pos = comma + 1;
        if (item.empty()) continue;
        FaultSpec fs;
        std::size_t c1 = item.find(':');
        std::string site = item.substr(0, c1);
        if (c1 != std::string::npos) {
            std::size_t c2 = item.find(':', c1 + 1);
            fs.afterHits = std::strtoull(
                item.substr(c1 + 1, c2 - c1 - 1).c_str(), nullptr, 10);
            if (c2 != std::string::npos) {
                fs.failCount = std::strtoull(
                    item.substr(c2 + 1).c_str(), nullptr, 10);
            }
        }
        FaultInjection::enable(site, fs);
        std::fprintf(stderr,
                     "zkv_server: armed fault site '%s' (after=%llu "
                     "count=%llu)\n",
                     site.c_str(),
                     static_cast<unsigned long long>(fs.afterHits),
                     static_cast<unsigned long long>(fs.failCount));
    }
}

} // namespace

int
main(int argc, char** argv)
{
    net::ZkvServerConfig cfg;
    cfg.host = flag(argc, argv, "host", "127.0.0.1");
    cfg.port = static_cast<std::uint16_t>(flagU64(argc, argv, "port", 0));
    cfg.store.shards =
        static_cast<std::uint32_t>(flagU64(argc, argv, "shards", 4));
    std::string array_name = flag(argc, argv, "array", "z");
    if (array_name == "z") {
        cfg.store.array.kind = ArrayKind::ZCache;
    } else if (array_name == "sa") {
        cfg.store.array.kind = ArrayKind::SetAssoc;
    } else if (array_name == "skew") {
        cfg.store.array.kind = ArrayKind::SkewAssoc;
    } else {
        std::fprintf(stderr,
                     "error: unknown --array '%s' (valid: z, sa, skew)\n",
                     array_name.c_str());
        return 2;
    }
    cfg.store.array.blocks =
        static_cast<std::uint32_t>(flagU64(argc, argv, "blocks", 4096));
    cfg.store.array.ways =
        static_cast<std::uint32_t>(flagU64(argc, argv, "ways", 4));
    cfg.store.array.levels =
        static_cast<std::uint32_t>(flagU64(argc, argv, "levels", 2));
    cfg.store.array.maxCandidates =
        static_cast<std::uint32_t>(flagU64(argc, argv, "cands", 0));
    auto policy = parsePolicyKind(flag(argc, argv, "policy", "lru"));
    if (!policy) {
        std::fprintf(stderr, "error: %s\n",
                     policy.status().str().c_str());
        return 2;
    }
    cfg.store.array.policy = *policy;
    cfg.store.array.seed = flagU64(argc, argv, "seed", 1);
    std::string lock_name = flag(argc, argv, "lock", "mutex");
    if (lock_name != "mutex" && lock_name != "spin") {
        std::fprintf(stderr,
                     "error: unknown --lock '%s' (valid: mutex, spin)\n",
                     lock_name.c_str());
        return 2;
    }
    cfg.store.lock = lock_name == "spin" ? ShardLockKind::Spin
                                         : ShardLockKind::Mutex;
    if (flagBool(argc, argv, "value-bytes") ||
        !flag(argc, argv, "value-bytes", "").empty()) {
        std::uint64_t cap = flagU64(argc, argv, "value-bytes",
                                    kZkvMaxValueBytes);
        if (cap == 0 || cap > kZkvMaxValueBytes) {
            cap = kZkvMaxValueBytes;
        }
        cfg.store.value.maxBytes = static_cast<std::uint32_t>(cap);
        auto codec = parseCodecKind(flag(argc, argv, "codec", "bdi"));
        if (!codec) {
            std::fprintf(stderr, "error: %s\n",
                         codec.status().str().c_str());
            return 2;
        }
        cfg.store.value.codec = *codec;
    }
    cfg.maxConnections = static_cast<std::uint32_t>(
        flagU64(argc, argv, "max-conns", 1024));
    cfg.drainTimeoutMs = static_cast<std::uint32_t>(
        flagU64(argc, argv, "drain-timeout-ms", 2000));
    cfg.obs.tracePath = flag(argc, argv, "trace-out", "");
    cfg.obs.metricsPath = flag(argc, argv, "metrics-out", "");
    cfg.obs.promPath = flag(argc, argv, "prom-out", "");
    cfg.obs.metricsIntervalMs = static_cast<std::uint32_t>(
        flagU64(argc, argv, "metrics-interval-ms", 100));
    cfg.obs.ringCapacity = static_cast<std::uint32_t>(
        flagU64(argc, argv, "ring-cap", 1u << 16));

    cfg.store.persist.dataDir = flag(argc, argv, "data-dir", "");
    auto fsync_policy =
        persist::parseFsyncPolicy(flag(argc, argv, "fsync", "always"));
    if (!fsync_policy) {
        std::fprintf(stderr, "error: %s\n",
                     fsync_policy.status().str().c_str());
        return 2;
    }
    cfg.store.persist.fsync = *fsync_policy;
    cfg.store.persist.fsyncIntervalMs = static_cast<std::uint32_t>(
        flagU64(argc, argv, "fsync-interval-ms", 50));
    cfg.store.persist.snapshotEveryOps =
        flagU64(argc, argv, "snapshot-every-ops", 0);
    cfg.store.persist.queueCap = static_cast<std::size_t>(
        flagU64(argc, argv, "persist-queue-cap", 4096));
    auto backpressure = persist::parseBackpressure(
        flag(argc, argv, "persist-backpressure", "block"));
    if (!backpressure) {
        std::fprintf(stderr, "error: %s\n",
                     backpressure.status().str().c_str());
        return 2;
    }
    cfg.store.persist.backpressure = *backpressure;
    std::string recovery_report_out =
        flag(argc, argv, "recovery-report-out", "");

    std::string port_file = flag(argc, argv, "port-file", "");
    std::string stats_out = flag(argc, argv, "stats-out", "");
    std::uint64_t duration_s = flagU64(argc, argv, "duration-s", 0);
    std::string faults = flag(argc, argv, "fault", "");
    if (!faults.empty()) armFaults(faults);

    auto srv_or = net::ZkvServer::create(cfg);
    if (!srv_or) {
        std::fprintf(stderr, "error: %s\n",
                     srv_or.status().str().c_str());
        return srv_or.status().code() == ErrorCode::InvalidArgument ? 2
                                                                    : 1;
    }
    std::unique_ptr<net::ZkvServer> srv = std::move(*srv_or);

    if (srv->store().persistEnabled()) {
        auto report_or = srv->store().recover();
        if (!report_or) {
            std::fprintf(stderr, "error: %s\n",
                         report_or.status().str().c_str());
            return 1;
        }
        const persist::RecoveryReport& rep = *report_or;
        std::fprintf(stderr,
                     "zkv_server: recovered %llu op(s) (%llu skipped, "
                     "%llu salvaged byte(s), %llu gap(s)) from %s\n",
                     static_cast<unsigned long long>(
                         rep.totalReplayed()),
                     static_cast<unsigned long long>(
                         rep.totalSkipped()),
                     static_cast<unsigned long long>(
                         rep.totalSalvagedBytes()),
                     static_cast<unsigned long long>(rep.totalGaps()),
                     cfg.store.persist.dataDir.c_str());
        if (!recovery_report_out.empty()) {
            std::ofstream out(recovery_report_out);
            out << rep.toJson().str(2) << "\n";
            if (!out.good()) {
                std::fprintf(stderr,
                             "error: cannot write "
                             "--recovery-report-out %s\n",
                             recovery_report_out.c_str());
                return 1;
            }
        }
    } else if (!recovery_report_out.empty()) {
        std::fprintf(stderr, "error: --recovery-report-out needs "
                             "--data-dir\n");
        return 2;
    }

    if (!port_file.empty()) {
        std::ofstream out(port_file);
        out << srv->port() << "\n";
        if (!out.good()) {
            std::fprintf(stderr, "error: cannot write --port-file %s\n",
                         port_file.c_str());
            return 1;
        }
    }
    std::fprintf(stderr, "zkv_server: listening on %s:%u (%s, %u "
                         "shards, lock=%s)\n",
                 cfg.host.c_str(), srv->port(),
                 cfg.store.array.label().c_str(), cfg.store.shards,
                 shardLockKindName(cfg.store.lock));

    g_server.store(srv.get(), std::memory_order_release);
    std::signal(SIGTERM, onSignal);
    std::signal(SIGINT, onSignal);

    // Interruptible duration timer: when a signal ends serve() early,
    // the condvar cancels the wait so exit (and --stats-out) is not
    // delayed by the remainder of --duration-s.
    std::thread timer;
    std::mutex timer_mx;
    std::condition_variable timer_cv;
    bool timer_cancel = false;
    if (duration_s > 0) {
        net::ZkvServer* raw = srv.get();
        timer = std::thread([&, raw, duration_s] {
            std::unique_lock<std::mutex> lk(timer_mx);
            bool cancelled = timer_cv.wait_for(
                lk, std::chrono::seconds(duration_s),
                [&] { return timer_cancel; });
            if (!cancelled) raw->shutdown();
        });
    }

    Status serve_status = srv->serve();
    if (timer.joinable()) {
        {
            std::lock_guard<std::mutex> lk(timer_mx);
            timer_cancel = true;
        }
        timer_cv.notify_all();
        timer.join();
    }
    g_server.store(nullptr, std::memory_order_release);

    net::ZkvServerStats st = srv->stats();
    std::fprintf(stderr,
                 "zkv_server: served %llu frames (%llu ops in %llu "
                 "batches, %llu pings) over %llu connections; drained "
                 "%llu, aborted %llu\n",
                 static_cast<unsigned long long>(st.framesIn),
                 static_cast<unsigned long long>(st.batchedOps),
                 static_cast<unsigned long long>(st.batches),
                 static_cast<unsigned long long>(st.pings),
                 static_cast<unsigned long long>(st.accepted),
                 static_cast<unsigned long long>(st.drained),
                 static_cast<unsigned long long>(st.drainAborted));

    // Drain the op log before the stats dump so writer counters are
    // final and every acked op is on disk at exit.
    if (srv->store().persistEnabled()) {
        if (Status s = srv->store().stopPersist(); !s.isOk()) {
            std::fprintf(stderr, "error: %s\n", s.str().c_str());
            if (serve_status.isOk()) serve_status = s;
        }
    }

    if (!stats_out.empty()) {
        StatsRegistry reg;
        srv->registerStats(reg.root());
        if (!reg.writeJsonFile(stats_out)) {
            std::fprintf(stderr, "error: cannot write --stats-out %s\n",
                         stats_out.c_str());
            return 1;
        }
    }

    if (!serve_status.isOk()) {
        std::fprintf(stderr, "error: %s\n", serve_status.str().c_str());
        return 1;
    }
    return 0;
}
