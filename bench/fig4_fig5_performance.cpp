/**
 * @file
 * Fig. 4 and Fig. 5 — the paper's performance and energy evaluation.
 *
 * Fig. 4: L2 MPKI and IPC improvements of SA-16, SA-32 (H3-hashed),
 * Z4/4 (skew), Z4/16 and Z4/52 over a serial-lookup 4-way
 * set-associative cache with H3 hashing, across the 72-workload suite,
 * under OPT (4a) and bucketed LRU (4b). The paper plots per-design
 * sorted curves; this harness prints their percentiles plus the
 * loss/win counts, and per-workload rows under --verbose.
 *
 * Fig. 5: IPC and BIPS/W of serial vs parallel-lookup variants on five
 * representative workloads plus geomeans over the whole suite and over
 * the 10 most L2-miss-intensive workloads, normalized to the serial
 * SA-4 baseline.
 *
 * The whole workload x design x lookup x policy grid is declared as
 * one SweepSpec and executed by the parallel SweepRunner (src/runner,
 * docs/runner.md); the figures below print from the completed results,
 * so output is byte-identical for any --jobs=N.
 *
 * Expected shape:
 *  - MPKI improves monotonically with candidates; equal-R designs
 *    (SA-16 vs Z4/16) improve similarly (under OPT almost identically);
 *  - SA-32's 2-cycle hit-latency penalty erodes or reverses its IPC
 *    gains on hit-heavy workloads; zcaches never pay that cost;
 *  - over the top-10 miss-intensive workloads, Z4/52 beats both the
 *    baseline (IPC and BIPS/W) and SA-32;
 *  - parallel lookup helps hit-latency-bound workloads, but its energy
 *    premium grows steeply with SA ways while zcaches keep it small.
 *
 * Flags: --policy=lru|opt|both  --workloads=quick|all  --verbose
 *        --warmup=N --instr=N  --serial-only  --json=PATH
 *        --jobs=N --no-progress  --metrics-out=PATH
 *
 * --metrics-out streams every grid point's epoch-sampler series into
 * one NDJSON file (obs/metrics.hpp writeEpochSeries): one record per
 * epoch per point, tagged with the point's grid tags, in grid order —
 * deterministic for any --jobs=N, same contract as the report JSON.
 */

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "common/stats.hpp"
#include "obs/metrics.hpp"
#include "runner/sweep.hpp"
#include "runner/workload_suite.hpp"
#include "sim/experiment.hpp"

#include "bench_util.hpp"

using namespace zc;

namespace {

struct Design
{
    std::string label;
    ArraySpec spec;
};

std::vector<Design>
designs()
{
    auto sa = [](std::uint32_t ways) {
        Design d;
        d.label = "SA-" + std::to_string(ways);
        d.spec.kind = ArrayKind::SetAssoc;
        d.spec.ways = ways;
        d.spec.hashKind = HashKind::H3;
        return d;
    };
    auto z = [](std::uint32_t levels) {
        Design d;
        d.spec.kind = ArrayKind::ZCache;
        d.spec.ways = 4;
        d.spec.levels = levels;
        d.spec.hashKind = HashKind::H3;
        d.label = "Z4/" + std::to_string(ZArray::nominalCandidates(4, levels));
        return d;
    };
    return {sa(4), sa(16), sa(32), z(1), z(2), z(3)};
}

/** Representative workloads plotted in Fig. 5. */
const std::vector<std::string> kFig5Workloads{
    "blackscholes", "gamess", "ammp", "canneal", "cactusADM",
};

struct Key
{
    std::string workload;
    std::string design;
    bool serial;
    PolicyKind policy;

    bool
    operator<(const Key& o) const
    {
        return std::tie(workload, design, serial, policy) <
               std::tie(o.workload, o.design, o.serial, o.policy);
    }
};

/**
 * Grid-order view of a completed sweep: figure printers look runs up by
 * (workload, design, lookup, policy). A point that failed (isolated by
 * the runner, already reported on stderr) reads as a zeroed RunResult.
 */
class ResultTable
{
  public:
    void
    put(Key k, const RunResult* r)
    {
        results_.emplace(std::move(k), r);
    }

    const RunResult&
    get(const std::string& workload, const Design& d, bool serial,
        PolicyKind policy) const
    {
        auto it = results_.find(Key{workload, d.label, serial, policy});
        if (it == results_.end() || it->second == nullptr) return empty_;
        return *it->second;
    }

  private:
    std::map<Key, const RunResult*> results_;
    RunResult empty_;
};

void
printPercentiles(const std::string& label, std::vector<double> ratios)
{
    std::sort(ratios.begin(), ratios.end());
    auto q = [&](double f) {
        return quantile(ratios, f);
    };
    int losses = static_cast<int>(
        std::count_if(ratios.begin(), ratios.end(),
                      [](double r) { return r < 0.999; }));
    std::printf("  %-7s min %.3f | p10 %.3f | p25 %.3f | median %.3f | "
                "p75 %.3f | p90 %.3f | max %.3f | <1.0 on %d/%zu\n",
                label.c_str(), q(0.0), q(0.1), q(0.25), q(0.5), q(0.75),
                q(0.9), q(1.0), losses, ratios.size());
}

void
fig4(const ResultTable& table, const std::vector<std::string>& suite,
     PolicyKind policy, bool verbose)
{
    auto ds = designs();
    const Design& base = ds[0]; // SA-4 + H3, serial

    benchutil::banner(std::string("Fig. 4") +
                      (policy == PolicyKind::Opt ? "a (OPT)"
                                                 : "b (bucketed LRU)") +
                      ": improvements over serial SA-4+H3");

    for (std::size_t i = 1; i < ds.size(); i++) {
        std::vector<double> mpki_ratio, ipc_ratio;
        std::vector<std::string> rows;
        for (const auto& wl : suite) {
            const RunResult& b = table.get(wl, base, true, policy);
            const RunResult& r = table.get(wl, ds[i], true, policy);
            double mr = r.mpki > 1e-9 ? b.mpki / r.mpki : 1.0;
            double ir = b.ipc > 1e-9 ? r.ipc / b.ipc : 1.0;
            mpki_ratio.push_back(mr);
            ipc_ratio.push_back(ir);
            if (verbose) {
                char buf[128];
                std::snprintf(buf, sizeof buf,
                              "    %-14s mpki x%.3f  ipc x%.3f", wl.c_str(),
                              mr, ir);
                rows.push_back(buf);
            }
        }
        std::printf("%s:\n", ds[i].label.c_str());
        printPercentiles("MPKI", mpki_ratio);
        printPercentiles("IPC", ipc_ratio);
        for (const auto& row : rows) std::printf("%s\n", row.c_str());
    }
}

void
fig5(const ResultTable& table, const std::vector<std::string>& suite,
     PolicyKind policy, bool serial_only)
{
    auto ds = designs();
    const Design& base = ds[0];

    // The 10 most miss-intensive workloads under the baseline (shared
    // ranking rule: runner/workload_suite.hpp).
    std::vector<std::string> top10 = suite::topByMetric(
        suite,
        [&](const std::string& wl) {
            return table.get(wl, base, true, policy).mpki;
        },
        10);

    benchutil::banner(std::string("Fig. 5 (") + policyKindName(policy) +
                      "): IPC and BIPS/W vs serial SA-4+H3");
    std::printf("top-10 L2-miss-intensive: ");
    for (const auto& w : top10) std::printf("%s ", w.c_str());
    std::printf("\n");

    double base_ipc_geo, base_bw_geo, base_ipc_top, base_bw_top;
    {
        std::vector<double> i_all, b_all, i_top, b_top;
        for (const auto& wl : suite) {
            const RunResult& r = table.get(wl, base, true, policy);
            i_all.push_back(r.ipc);
            b_all.push_back(r.bipsPerWatt);
        }
        for (const auto& wl : top10) {
            const RunResult& r = table.get(wl, base, true, policy);
            i_top.push_back(r.ipc);
            b_top.push_back(r.bipsPerWatt);
        }
        base_ipc_geo = geomean(i_all);
        base_bw_geo = geomean(b_all);
        base_ipc_top = geomean(i_top);
        base_bw_top = geomean(b_top);
    }

    for (const char* metric : {"IPC", "BIPS/W"}) {
        bool ipc = metric[0] == 'I';
        std::printf("\nnormalized %s:\n", metric);
        std::printf("  %-16s", "design");
        for (const auto& wl : kFig5Workloads) {
            std::printf(" %12s", wl.substr(0, 12).c_str());
        }
        std::printf(" %12s %12s\n", "gmean(all)", "gmean(top10)");

        for (const auto& d : ds) {
            for (bool serial : {true, false}) {
                if (serial_only && !serial) continue;
                std::printf("  %-16s",
                            (d.label + (serial ? " ser" : " par")).c_str());
                for (const auto& wl : kFig5Workloads) {
                    const RunResult& b = table.get(wl, base, true, policy);
                    const RunResult& r = table.get(wl, d, serial, policy);
                    double num = ipc ? r.ipc : r.bipsPerWatt;
                    double den = ipc ? b.ipc : b.bipsPerWatt;
                    std::printf(" %12.3f", den > 0 ? num / den : 0.0);
                }
                std::vector<double> v_all, v_top;
                for (const auto& wl : suite) {
                    const RunResult& r = table.get(wl, d, serial, policy);
                    v_all.push_back(ipc ? r.ipc : r.bipsPerWatt);
                }
                for (const auto& wl : top10) {
                    const RunResult& r = table.get(wl, d, serial, policy);
                    v_top.push_back(ipc ? r.ipc : r.bipsPerWatt);
                }
                std::printf(" %12.3f %12.3f\n",
                            geomean(v_all) /
                                (ipc ? base_ipc_geo : base_bw_geo),
                            geomean(v_top) /
                                (ipc ? base_ipc_top : base_bw_top));
            }
        }
    }
}

/**
 * Stream the epoch-sampler series of every completed point into one
 * NDJSON file, in grid order. Failed points are skipped (they have no
 * epochs); returns false on any I/O error after reporting it.
 */
bool
writeSweepEpochSeries(const std::string& path, const SweepSpec& spec,
                      const std::vector<RunOutcome>& outcomes)
{
    bool first = true;
    std::size_t records = 0;
    for (std::size_t i = 0; i < outcomes.size(); i++) {
        if (!outcomes[i].ok) continue;
        const JsonValue* system = outcomes[i].result.stats.find("system");
        const JsonValue* epochs =
            system != nullptr ? system->find("epochs") : nullptr;
        const JsonValue* samples =
            epochs != nullptr ? epochs->find("samples") : nullptr;
        if (samples == nullptr || !samples->isArray()) continue;
        JsonValue tags = JsonValue::object();
        tags.set("point", JsonValue(std::uint64_t{i}));
        for (const auto& [k, v] : spec.points[i].tags) tags.set(k, v);
        Status st = writeEpochSeries(path, *samples, tags, !first);
        if (!st.isOk()) {
            std::fprintf(stderr, "error: --metrics-out: %s\n",
                         st.message().c_str());
            return false;
        }
        first = false;
        records += samples->arr().size();
    }
    if (first) {
        // No point produced samples; still leave a valid (empty) file.
        Status st =
            writeEpochSeries(path, JsonValue::array(), JsonValue::object());
        if (!st.isOk()) {
            std::fprintf(stderr, "error: --metrics-out: %s\n",
                         st.message().c_str());
            return false;
        }
    }
    // Notice, not report output: stdout must stay byte-identical with or
    // without the flag (docs/observability.md).
    std::fprintf(stderr, "metrics: %zu epoch records (%zu points) -> %s\n",
                 records, outcomes.size(), path.c_str());
    return true;
}

} // namespace

int
main(int argc, char** argv)
{
    std::string policy_s = benchutil::flag(argc, argv, "policy", "both");
    std::string suite_s = benchutil::flag(argc, argv, "workloads", "quick");
    bool verbose = benchutil::flagBool(argc, argv, "verbose");
    bool serial_only = benchutil::flagBool(argc, argv, "serial-only");
    std::uint64_t warmup = benchutil::flagU64(argc, argv, "warmup", 120000);
    std::uint64_t instr = benchutil::flagU64(argc, argv, "instr", 120000);
    std::string metrics_out =
        benchutil::flag(argc, argv, "metrics-out", "");

    std::vector<std::string> wls =
        suite::resolve(suite_s, suite::quickPerformance());

    std::printf("Table I system: 32 in-order cores @2GHz, 32KB 4-way L1s, "
                "8MB 8-bank shared L2 (organization under test), MESI "
                "directory, 200-cycle memory\n");
    std::printf("suite: %zu workloads, %llu+%llu instr/core "
                "(warmup+measure)\n",
                wls.size(), static_cast<unsigned long long>(warmup),
                static_cast<unsigned long long>(instr));

    std::vector<PolicyKind> policies;
    if (policy_s == "lru") {
        policies = {PolicyKind::BucketedLru};
    } else if (policy_s == "opt") {
        policies = {PolicyKind::Opt};
    } else if (policy_s == "both") {
        policies = {PolicyKind::Opt, PolicyKind::BucketedLru};
    } else {
        std::fprintf(stderr,
                     "error: --policy=%s: unknown value (valid: lru, "
                     "opt, both)\n",
                     policy_s.c_str());
        return 2;
    }
    std::vector<bool> lookups{true};
    if (!serial_only) lookups.push_back(false);

    // Declare the full grid, run it once, then print both figures from
    // the completed results.
    auto ds = designs();
    SweepSpec spec;
    spec.name = "fig4_fig5_performance";
    std::vector<Key> keys;
    for (PolicyKind policy : policies) {
        for (const auto& wl : wls) {
            for (const auto& d : ds) {
                for (bool serial : lookups) {
                    RunParams p;
                    p.workload = wl;
                    p.l2Spec = d.spec;
                    p.l2Spec.policy = policy;
                    p.serialLookup = serial;
                    p.warmupInstr = warmup;
                    p.measureInstr = instr;
                    spec.add(
                        p,
                        {{"workload", JsonValue(wl)},
                         {"design", JsonValue(d.label)},
                         {"serial_lookup", JsonValue(serial)},
                         {"policy", JsonValue(std::string(
                                        policyKindName(policy)))}});
                    keys.push_back(Key{wl, d.label, serial, policy});
                }
            }
        }
    }

    // Construct the report before the sweep so its perf meter's wall
    // clock covers the actual simulation work.
    benchutil::JsonReport report(argc, argv, spec.name);
    SweepRunner runner(benchutil::sweepOptions(argc, argv, spec.name));
    std::vector<RunOutcome> outcomes = benchutil::runSweep(runner, spec);
    std::size_t failed = SweepRunner::reportFailures(spec, outcomes);

    ResultTable table;
    for (std::size_t i = 0; i < outcomes.size(); i++) {
        table.put(keys[i], outcomes[i].ok ? &outcomes[i].result : nullptr);
    }
    report.addSweep(spec, outcomes);

    bool metrics_ok = true;
    if (!metrics_out.empty()) {
        metrics_ok = writeSweepEpochSeries(metrics_out, spec, outcomes);
    }

    for (PolicyKind policy : policies) {
        fig4(table, wls, policy, verbose);
        fig5(table, wls, policy, serial_only);
    }
    return (report.writeIfRequested() && failed == 0 && metrics_ok) ? 0 : 1;
}
