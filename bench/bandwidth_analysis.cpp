/**
 * @file
 * Section VI-D — array bandwidth analysis.
 *
 * For the Z4/52 L2, reports per-workload: average core-demand load per
 * bank-cycle, total tag-array accesses per bank-cycle (walks included),
 * and misses per bank-cycle. Both parts (the per-workload table and the
 * mcf walk-throttling sweep) are declared as one SweepSpec and executed
 * in parallel by the SweepRunner (--jobs=N, docs/runner.md). The
 * paper's observations to reproduce:
 *
 *  - the maximum average load per bank stays low (paper: 15.2% peak);
 *  - as misses/cycle rise, demand load *falls* (self-throttling: cores
 *    stall on memory), so walks consume otherwise-idle tag bandwidth;
 *  - total tag load stays far below one access per bank-cycle (paper:
 *    0.092 tag accesses/cycle/bank at 0.005 misses/cycle/bank).
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "runner/sweep.hpp"
#include "runner/workload_suite.hpp"
#include "sim/experiment.hpp"

#include "bench_util.hpp"

using namespace zc;

int
main(int argc, char** argv)
{
    std::string suite_s = benchutil::flag(argc, argv, "workloads", "quick");
    std::uint64_t warmup = benchutil::flagU64(argc, argv, "warmup", 100000);
    std::uint64_t instr = benchutil::flagU64(argc, argv, "instr", 100000);
    benchutil::JsonReport report(argc, argv, "bandwidth_analysis");

    std::vector<std::string> wls =
        suite::resolve(suite_s, suite::quickBandwidth());

    auto z52 = [&](const std::string& workload) {
        RunParams p;
        p.workload = workload;
        p.l2Spec.kind = ArrayKind::ZCache;
        p.l2Spec.ways = 4;
        p.l2Spec.levels = 3; // Z4/52
        p.l2Spec.policy = PolicyKind::BucketedLru;
        p.warmupInstr = warmup;
        p.measureInstr = instr;
        return p;
    };

    // Grid: the per-workload bandwidth table, then the mcf token-window
    // sweep (Section III's early-stop knob, in-system).
    SweepSpec spec;
    spec.name = "bandwidth_analysis";
    for (const auto& wl : wls) {
        spec.add(z52(wl),
                 {{"workload", JsonValue(wl)},
                  {"design", JsonValue("Z4/52")},
                  {"walk_token_window", JsonValue(std::uint64_t{0})}});
    }
    const std::vector<std::uint32_t> windows{0u, 64u, 16u, 4u};
    for (std::uint32_t window : windows) {
        RunParams p = z52("mcf");
        p.base.walkThrottle = window > 0;
        p.base.walkTokenWindow = window;
        spec.add(p,
                 {{"workload", JsonValue(std::string("mcf"))},
                  {"design", JsonValue("Z4/52")},
                  {"walk_token_window", JsonValue(std::uint64_t{window})}});
    }

    SweepRunner runner(benchutil::sweepOptions(argc, argv, spec.name));
    std::vector<RunOutcome> outcomes = benchutil::runSweep(runner, spec);
    std::size_t failed = SweepRunner::reportFailures(spec, outcomes);
    report.addSweep(spec, outcomes);

    benchutil::banner("Section VI-D: Z4/52 tag-array bandwidth");
    // The paper counts tag-array *operations*: one operation reads one
    // index in every way in parallel (Fig. 1g's timeline), so a walk
    // level of k candidates on a W-way array needs ~k/W operations.
    // tagPerBankCycle counts individual way-tag reads; dividing by W
    // gives the paper's unit.
    std::printf("%-16s %12s %12s %12s %12s %10s\n", "workload",
                "load/bank-cy", "tagrd/bank-cy", "tagops/b-cy",
                "miss/bank-cy", "mpki");

    struct Point
    {
        std::string wl;
        double load, tag, miss, mpki;
    };
    std::vector<Point> points;
    for (std::size_t i = 0; i < wls.size(); i++) {
        const RunResult& r = outcomes[i].result;
        points.push_back({wls[i], r.loadPerBankCycle, r.tagPerBankCycle,
                          r.missPerBankCycle, r.mpki});
        std::printf("%-16s %12.4f %12.4f %12.4f %12.4f %10.2f\n",
                    wls[i].c_str(), r.loadPerBankCycle, r.tagPerBankCycle,
                    r.tagPerBankCycle / 4.0, r.missPerBankCycle, r.mpki);
    }

    auto max_load = std::max_element(
        points.begin(), points.end(),
        [](const Point& a, const Point& b) { return a.load < b.load; });
    std::printf("\nmax average load per bank: %.1f%% on %s "
                "(paper: 15.2%% peak)\n",
                100.0 * max_load->load, max_load->wl.c_str());

    // Self-throttling: correlation between miss rate and demand load.
    std::sort(points.begin(), points.end(),
              [](const Point& a, const Point& b) { return a.miss < b.miss; });
    std::size_t half = points.size() / 2;
    double low_miss_load = 0, high_miss_load = 0;
    for (std::size_t i = 0; i < half; i++) low_miss_load += points[i].load;
    for (std::size_t i = half; i < points.size(); i++) {
        high_miss_load += points[i].load;
    }
    low_miss_load /= half;
    high_miss_load /= (points.size() - half);
    std::printf("self-throttling: mean load %.4f acc/bank-cy in the "
                "low-miss half vs %.4f in the high-miss half\n",
                low_miss_load, high_miss_load);
    std::printf("\nExpected shape: tag operations stay far below one per "
                "bank-cycle (paper: 0.092 at 0.005 misses/bank-cycle, "
                "i.e. demand + ~12 walk ops per miss); high-miss "
                "workloads show no higher demand load than low-miss "
                "ones.\n");

    benchutil::banner("walk throttling (token window sweep, mcf)");
    std::printf("%-10s %12s %12s %10s %12s\n", "window", "tag/bank-cy",
                "tagops/b-cy", "mpki", "throttled");
    for (std::size_t i = 0; i < windows.size(); i++) {
        std::uint32_t window = windows[i];
        const RunResult& r = outcomes[wls.size() + i].result;
        std::printf("%-10s %12.4f %12.4f %10.2f %12s\n",
                    window ? std::to_string(window).c_str() : "off",
                    r.tagPerBankCycle, r.tagPerBankCycle / 4.0, r.mpki,
                    window ? "(see stats)" : "-");
    }
    std::printf("\nExpected shape: tighter windows shed walk tag traffic "
                "with only marginal MPKI increase.\n");
    return (report.writeIfRequested() && failed == 0) ? 0 : 1;
}
