/**
 * @file
 * Open-loop TCP load generator for zkv_server (docs/server.md): the
 * coordinated-omission-safe companion to the in-process
 * store_loadgen. Arrival times are fixed up front from a target rate
 * (net/openloop.hpp) and every operation's latency is measured from
 * its INTENDED arrival, not from when the socket got around to
 * sending it — server stalls therefore land in the histogram as the
 * queueing delay a real client population would have seen, which is
 * what makes the throughput-vs-p99 curves honest (closed-loop
 * generators silently pace themselves to the server and miss exactly
 * the latencies that matter).
 *
 * Flags:
 *   --host=127.0.0.1 --port=N   server address; or --port-file=<path>
 *                               (reads the port zkv_server wrote)
 *   --connections=1             client connections (one thread each)
 *   --ops=100000                total operations across connections
 *   --rate=50000                target ops/sec across connections
 *   --sweep-rates=a,b,c         rate-sweep mode: one point per rate,
 *                               printing the throughput-vs-percentile
 *                               curve (scripts/slo_report.py renders
 *                               the JSON); overrides --rate
 *   --arrivals=poisson          arrival process: poisson | fixed
 *   --get=0.7 --erase=0.05      op mix (rest = puts)
 *   --workload=canneal          WorkloadRegistry key-stream profile
 *   --seed=1                    base seed
 *   --crc                       CRC-protect every frame (echoed back)
 *   --value-bytes=<dist>        bytes mode (docs/compression.md):
 *                               variable-length byte payloads against
 *                               a bytes-mode server (zkv_server
 *                               --value-bytes). fixed:N | uniform:LO:HI
 *                               | N. Payloads are the same
 *                               deterministic function of (key, conn)
 *                               store_loadgen uses, so every GET hit
 *                               is verified byte-exactly end to end
 *                               through compression and the wire.
 *                               Incompatible with --shadow-out /
 *                               --verify-shadow (u64 shadow maps).
 *   --pipeline-depth=0          optional cap on in-flight requests
 *                               per connection (0 = unbounded, the
 *                               pure open-loop; a bound models client
 *                               admission control)
 *   --drain-wait-ms=5000        grace for straggler responses after
 *                               the last send before counting them
 *                               lost
 *   --json=<path>               standard JSON report
 *
 * Crash-recovery verification (docs/durability.md):
 *   --shadow-out=<path>   write a shadow map of every key this run
 *                         touched: the set of values a later GET may
 *                         legally return (puts are value-deterministic
 *                         per key+connection, so acked and in-flight
 *                         writes both land in the allowed set) plus an
 *                         erased marker. Survives a SIGKILLed server:
 *                         the file describes what the CLIENT observed.
 *   --verify-shadow=<path>  read a shadow map and GET every key from
 *                         the (recovered) server instead of running
 *                         load: a hit whose value is outside the
 *                         allowed set — including any hit on an
 *                         erased-and-never-put key — is a durability
 *                         violation and exits 1; misses are always
 *                         legal (eviction, unacked loss, erase).
 *
 * Failures surface as structured counts, never crashes
 * (docs/robustness.md): response status bytes are tallied per
 * ErrorCode, transport errors (resets from injected net.* faults,
 * refused connects) count under transport_errors with automatic
 * reconnects, and responses forfeited by a dead connection count
 * under lost_inflight. completed + lost_inflight == issued ==
 * scheduled arrivals, exactly.
 *
 * Exit codes (bench protocol): 0 clean (failure *counts* are data,
 * not an exit condition), 1 a point could not run at all (no
 * connection, zero completions) or unwritable output, 2 usage error.
 */

#include <poll.h>
#include <sys/socket.h>

#include <array>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "net/client.hpp"
#include "net/openloop.hpp"
#include "obs/latency_scale.hpp"
#include "obs/trace_event.hpp"
#include "store/loadgen.hpp"
#include "store/zkv.hpp"
#include "trace/workloads.hpp"

namespace {

using namespace zc;
using namespace zc::benchutil;

/** One connection-thread's tallies. */
struct ConnStats
{
    explicit ConnStats(std::size_t bins) : latency(bins) {}

    std::uint64_t issued = 0;    ///< requests sent (== arrivals taken)
    std::uint64_t completed = 0; ///< responses received
    std::uint64_t lostInflight = 0; ///< forfeited to dead connections
    std::uint64_t transportErrors = 0;
    std::uint64_t reconnects = 0;
    std::uint64_t lateSends = 0; ///< sent >1ms after intended arrival

    std::uint64_t gets = 0, getHits = 0;
    std::uint64_t puts = 0, erases = 0;
    std::uint64_t verifyFailures = 0;

    /** Response status bytes tallied per ErrorCode (index = code). */
    std::array<std::uint64_t, 16> statusCounts{};

    UnitHistogram latency; ///< from INTENDED arrival to response
    double seconds = 0.0;
};

/**
 * One connection's contribution to the shadow map: keys it issued
 * puts/erases for. Values are not stored — a put's payload is the
 * pure function zkvMix64(key) + tid, so the key set IS the value set.
 * Keys are recorded at issue time: an in-flight write the server may
 * or may not have applied before a crash is exactly as legal a GET
 * result as an acked one.
 */
struct ShadowLog
{
    std::unordered_set<std::uint64_t> putKeys;
    std::unordered_set<std::uint64_t> eraseKeys;
};

/** Merged shadow map: key -> (allowed hit values, erased marker). */
struct ShadowEntry
{
    std::set<std::uint64_t> allowed;
    bool erased = false;
};

struct PointConfig
{
    net::ZkvClientConfig client;
    std::uint32_t connections = 1;
    std::uint64_t ops = 100000;
    double rate = 50000.0;
    ArrivalKind arrivals = ArrivalKind::Poisson;
    double getFrac = 0.7;
    double eraseFrac = 0.05;
    std::string workload = "canneal";
    std::uint64_t seed = 1;
    std::uint64_t pipelineDepth = 0; ///< 0 = unbounded
    std::uint64_t drainWaitMs = 5000;
    std::size_t latencyBins = 64;

    /** Bytes mode (docs/compression.md): variable-length payloads
     *  with deterministic per-key lengths in [vbMin, vbMax]. */
    bool bytesMode = false;
    std::uint32_t vbMin = 16;
    std::uint32_t vbMax = 64;
};

struct PointResult
{
    std::vector<ConnStats> perConn;
    double seconds = 0.0; ///< wall clock, first send to last response
};

/**
 * Drive one connection open-loop: send each request at its scheduled
 * arrival (never waiting for responses), collect responses as they
 * come, measure latency from the intended arrival time. On a
 * transport error the connection is re-established and outstanding
 * responses are counted lost — the schedule keeps going.
 */
void
runConn(const PointConfig& cfg, std::uint32_t tid,
        std::uint64_t ops_budget, double conn_rate, ConnStats& cs,
        ShadowLog* shadow)
{
    const WorkloadProfile* profile =
        WorkloadRegistry::find(cfg.workload);
    GeneratorPtr gen = WorkloadRegistry::makeCoreGenerator(
        *profile, tid, cfg.connections, cfg.seed);
    Pcg32 mix(zkvMix64(cfg.seed + tid), /*stream=*/0x6e6cULL + tid);
    ArrivalSchedule sched(cfg.arrivals, conn_rate,
                          zkvMix64(cfg.seed ^ 0xa1ULL) + tid);

    auto cli_or = net::ZkvClient::connect(cfg.client);
    if (!cli_or) {
        // Total connection failure: every scheduled op is forfeited.
        cs.transportErrors++;
        return;
    }
    std::unique_ptr<net::ZkvClient> cli = std::move(*cli_or);

    // Intended arrival offset (from t0) and key, per request id - 1:
    // responses echo id + type but not the key, so read-your-writes
    // verification looks the key up by id.
    std::vector<std::uint64_t> intendedNs(ops_budget, 0);
    std::vector<std::uint64_t> keyOf(ops_budget, 0);
    std::vector<std::uint8_t> rbuf;
    std::vector<std::uint8_t> wbuf;
    std::vector<std::uint8_t> vscratch; // bytes-mode verify buffer

    const std::uint64_t t0 = obsNowNs();
    std::uint64_t nextArr = sched.nextOffsetNs();
    std::uint64_t outstanding = 0;
    std::uint64_t drainDeadline = 0;

    auto now_off = [t0] { return obsNowNs() - t0; };

    auto reconnect = [&]() -> bool {
        cs.lostInflight += outstanding;
        outstanding = 0;
        rbuf.clear();
        cs.reconnects++;
        auto again = net::ZkvClient::connect(cfg.client);
        if (!again) return false;
        cli = std::move(*again);
        return true;
    };

    while (cs.completed + cs.lostInflight < ops_budget) {
        std::uint64_t now = now_off();

        // Send every arrival whose time has come (open loop: never
        // gated on responses, unless a pipeline bound models client
        // admission control).
        while (cs.issued < ops_budget && nextArr <= now &&
               (cfg.pipelineDepth == 0 ||
                outstanding < cfg.pipelineDepth)) {
            net::Request req;
            req.id = cs.issued + 1; // ids are 1-based per connection
            req.crc = cfg.client.crc;
            std::uint64_t key = gen->next().lineAddr;
            double u = mix.uniform();
            if (u < cfg.getFrac) {
                req.type = net::MsgType::Get;
                req.key = key;
                req.bytes = cfg.bytesMode;
                cs.gets++;
            } else if (u < cfg.getFrac + cfg.eraseFrac) {
                req.type = net::MsgType::Erase;
                req.key = key;
                cs.erases++;
                if (shadow != nullptr) shadow->eraseKeys.insert(key);
            } else {
                req.type = net::MsgType::Put;
                req.key = key;
                if (cfg.bytesMode) {
                    req.bytes = true;
                    zkvFillPayload(key, tid,
                                   zkvPayloadLen(key, cfg.vbMin,
                                                 cfg.vbMax),
                                   req.valueBytes);
                } else {
                    req.value = zkvMix64(key) + tid;
                }
                cs.puts++;
                if (shadow != nullptr) shadow->putKeys.insert(key);
            }
            intendedNs[cs.issued] = nextArr;
            keyOf[cs.issued] = req.key;
            if (now - nextArr > 1000000) cs.lateSends++;
            wbuf.clear();
            encodeRequest(req, wbuf);
            std::size_t sent = 0;
            bool dead = false;
            while (sent < wbuf.size()) {
                ssize_t n = ::send(cli->fd(), wbuf.data() + sent,
                                   wbuf.size() - sent, MSG_NOSIGNAL);
                if (n < 0) {
                    if (errno == EINTR) continue;
                    dead = true;
                    break;
                }
                sent += static_cast<std::size_t>(n);
            }
            cs.issued++;
            if (dead) {
                cs.transportErrors++;
                cs.lostInflight++; // this request never made it out
                if (!reconnect()) {
                    cs.lostInflight += ops_budget - cs.issued;
                    cs.issued = ops_budget;
                    return;
                }
            } else {
                outstanding++;
            }
            if (cs.issued < ops_budget) {
                nextArr = sched.nextOffsetNs();
            }
            now = now_off();
        }

        if (cs.issued == ops_budget && outstanding == 0) break;

        if (cs.issued == ops_budget && drainDeadline == 0) {
            drainDeadline = now + cfg.drainWaitMs * 1000000ull;
        }
        if (drainDeadline != 0 && now >= drainDeadline) {
            cs.lostInflight += outstanding;
            outstanding = 0;
            break;
        }

        // Wait for a response, but never past the next arrival.
        int timeout_ms = 100;
        if (cs.issued < ops_budget) {
            std::uint64_t wait_ns = nextArr > now ? nextArr - now : 0;
            timeout_ms = static_cast<int>(wait_ns / 1000000ull);
            if (timeout_ms > 100) timeout_ms = 100;
        }
        pollfd pfd{cli->fd(), POLLIN, 0};
        int pr = ::poll(&pfd, 1, timeout_ms);
        if (pr < 0 && errno != EINTR) {
            cs.transportErrors++;
            if (!reconnect()) break;
            continue;
        }
        if (pr <= 0 || (pfd.revents & (POLLIN | POLLHUP | POLLERR)) == 0)
            continue;

        std::uint8_t buf[4096];
        ssize_t n = ::recv(cli->fd(), buf, sizeof(buf), 0);
        if (n <= 0) {
            if (n < 0 && errno == EINTR) continue;
            // EOF or reset — a drained server or an injected net.*
            // fault; either way the outstanding responses are gone.
            cs.transportErrors++;
            if (cs.issued < ops_budget) {
                if (!reconnect()) {
                    cs.lostInflight += ops_budget - cs.issued;
                    cs.issued = ops_budget;
                    break;
                }
            } else {
                cs.lostInflight += outstanding;
                outstanding = 0;
                break;
            }
            continue;
        }
        rbuf.insert(rbuf.end(), buf, buf + n);

        std::size_t off = 0;
        bool framing_dead = false;
        while (off < rbuf.size()) {
            net::Response resp;
            auto consumed_or = net::decodeResponse(
                rbuf.data() + off, rbuf.size() - off, &resp);
            if (!consumed_or) {
                // Framing desync: unrecoverable on this connection.
                cs.transportErrors++;
                framing_dead = true;
                break;
            }
            if (*consumed_or == 0) break;
            off += *consumed_or;

            std::uint64_t recv_off = now_off();
            if (resp.id >= 1 && resp.id <= cs.issued) {
                std::uint64_t intended = intendedNs[resp.id - 1];
                double ns = recv_off > intended
                                ? static_cast<double>(recv_off -
                                                      intended)
                                : 0.0;
                cs.latency.record(latencyToUnit(ns));
                if (resp.type == net::MsgType::Get && resp.hit()) {
                    cs.getHits++;
                    // Values encode (key, writer tid); a hit decoding
                    // to an impossible writer means the store (or the
                    // wire) cross-connected a payload. Bytes mode
                    // checks the whole payload byte-exactly instead.
                    if (cfg.bytesMode) {
                        if (!zkvVerifyPayload(keyOf[resp.id - 1],
                                              cfg.connections,
                                              cfg.vbMin, cfg.vbMax,
                                              resp.valueBytes,
                                              vscratch)) {
                            cs.verifyFailures++;
                        }
                    } else if (resp.value -
                                   zkvMix64(keyOf[resp.id - 1]) >=
                               cfg.connections) {
                        cs.verifyFailures++;
                    }
                }
            }
            auto code = static_cast<std::size_t>(resp.status);
            if (code < cs.statusCounts.size()) cs.statusCounts[code]++;
            cs.completed++;
            if (outstanding > 0) outstanding--;
        }
        if (off > 0) {
            rbuf.erase(rbuf.begin(),
                       rbuf.begin() + static_cast<std::ptrdiff_t>(off));
        }
        if (framing_dead) {
            if (!reconnect()) break;
        }
    }
    cs.seconds = static_cast<double>(now_off()) / 1e9;
}

PointResult
runPoint(const PointConfig& cfg, std::vector<ShadowLog>* shadows)
{
    PointResult res;
    res.perConn.assign(cfg.connections, ConnStats(cfg.latencyBins));
    if (shadows != nullptr) shadows->assign(cfg.connections, {});
    WorkloadRegistry::prime();

    std::vector<std::thread> threads;
    threads.reserve(cfg.connections);
    const std::uint64_t per = cfg.ops / cfg.connections;
    const double conn_rate =
        cfg.rate / static_cast<double>(cfg.connections);
    auto t0 = std::chrono::steady_clock::now();
    for (std::uint32_t tid = 0; tid < cfg.connections; tid++) {
        std::uint64_t budget =
            per + (tid == 0 ? cfg.ops % cfg.connections : 0);
        threads.emplace_back([&, tid, budget] {
            runConn(cfg, tid, budget, conn_rate, res.perConn[tid],
                    shadows != nullptr ? &(*shadows)[tid] : nullptr);
        });
    }
    for (std::thread& t : threads) t.join();
    res.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    return res;
}

/** Merge per-connection stats (histograms bin-for-bin). */
ConnStats
aggregate(const PointResult& r, std::size_t bins)
{
    ConnStats a(bins);
    for (const ConnStats& c : r.perConn) {
        a.issued += c.issued;
        a.completed += c.completed;
        a.lostInflight += c.lostInflight;
        a.transportErrors += c.transportErrors;
        a.reconnects += c.reconnects;
        a.lateSends += c.lateSends;
        a.gets += c.gets;
        a.getHits += c.getHits;
        a.puts += c.puts;
        a.erases += c.erases;
        a.verifyFailures += c.verifyFailures;
        for (std::size_t i = 0; i < a.statusCounts.size(); i++) {
            a.statusCounts[i] += c.statusCounts[i];
        }
        a.latency.merge(c.latency);
        a.seconds = std::max(a.seconds, c.seconds);
    }
    return a;
}

std::vector<double>
parseRateList(const std::string& csv)
{
    std::vector<double> out;
    std::size_t pos = 0;
    while (pos <= csv.size()) {
        std::size_t comma = csv.find(',', pos);
        if (comma == std::string::npos) comma = csv.size();
        std::string item = csv.substr(pos, comma - pos);
        if (!item.empty()) out.push_back(std::atof(item.c_str()));
        pos = comma + 1;
    }
    return out;
}

/**
 * Shadow map file: "ZKSHADOW v1" header, then one line per key:
 * "<key> <v1>[,<v2>...] <erased 0|1>", values "-" when the key was
 * only ever erased. Decimal u64 throughout, keys sorted.
 */
bool
writeShadow(const std::string& path,
            const std::map<std::uint64_t, ShadowEntry>& map)
{
    std::ofstream out(path);
    out << "ZKSHADOW v1\n";
    for (const auto& [key, e] : map) {
        out << key << ' ';
        if (e.allowed.empty()) {
            out << '-';
        } else {
            bool first = true;
            for (std::uint64_t v : e.allowed) {
                if (!first) out << ',';
                out << v;
                first = false;
            }
        }
        out << ' ' << (e.erased ? 1 : 0) << '\n';
    }
    out.flush();
    return out.good();
}

bool
readShadow(const std::string& path,
           std::map<std::uint64_t, ShadowEntry>* map)
{
    std::ifstream in(path);
    std::string header;
    if (!std::getline(in, header) || header != "ZKSHADOW v1") {
        return false;
    }
    std::uint64_t key = 0;
    std::string vals;
    int erased = 0;
    while (in >> key >> vals >> erased) {
        ShadowEntry e;
        e.erased = erased != 0;
        if (vals != "-") {
            std::size_t pos = 0;
            while (pos <= vals.size()) {
                std::size_t comma = vals.find(',', pos);
                if (comma == std::string::npos) comma = vals.size();
                e.allowed.insert(std::strtoull(
                    vals.substr(pos, comma - pos).c_str(), nullptr,
                    10));
                pos = comma + 1;
            }
        }
        (*map)[key] = std::move(e);
    }
    return in.eof();
}

/**
 * GET every shadowed key from a (recovered) server and check the
 * durability contract: a hit must decode to an allowed value; a miss
 * is always legal (eviction, unacked loss, erase). Returns the
 * process exit code.
 */
int
verifyShadow(const net::ZkvClientConfig& client_cfg,
             const std::string& path)
{
    std::map<std::uint64_t, ShadowEntry> map;
    if (!readShadow(path, &map)) {
        std::fprintf(stderr,
                     "error: cannot read shadow map %s\n",
                     path.c_str());
        return 2;
    }
    auto cli_or = net::ZkvClient::connect(client_cfg);
    if (!cli_or) {
        std::fprintf(stderr, "error: %s\n",
                     cli_or.status().str().c_str());
        return 1;
    }
    std::unique_ptr<net::ZkvClient> cli = std::move(*cli_or);

    std::uint64_t hits = 0, misses = 0, mismatches = 0;
    for (const auto& [key, e] : map) {
        auto got = cli->get(key);
        if (!got) {
            std::fprintf(stderr, "error: GET %llu: %s\n",
                         static_cast<unsigned long long>(key),
                         got.status().str().c_str());
            return 1;
        }
        if (!got->has_value()) {
            misses++;
            continue;
        }
        std::uint64_t value = **got;
        if (e.allowed.count(value) != 0) {
            hits++;
            continue;
        }
        mismatches++;
        if (mismatches <= 10) {
            std::fprintf(stderr,
                         "error: shadow mismatch: key %llu hit value "
                         "%llu outside the allowed set (%zu value(s), "
                         "erased=%d)\n",
                         static_cast<unsigned long long>(key),
                         static_cast<unsigned long long>(value),
                         e.allowed.size(), e.erased ? 1 : 0);
        }
    }
    std::printf("net_loadgen: shadow verify: %zu key(s), "
                "verified_hits=%llu misses=%llu mismatches=%llu\n",
                map.size(), static_cast<unsigned long long>(hits),
                static_cast<unsigned long long>(misses),
                static_cast<unsigned long long>(mismatches));
    return mismatches == 0 ? 0 : 1;
}

} // namespace

int
main(int argc, char** argv)
{
    PointConfig base;
    base.client.host = flag(argc, argv, "host", "127.0.0.1");
    base.client.port =
        static_cast<std::uint16_t>(flagU64(argc, argv, "port", 0));
    std::string port_file = flag(argc, argv, "port-file", "");
    if (base.client.port == 0 && !port_file.empty()) {
        std::ifstream in(port_file);
        unsigned p = 0;
        if (!(in >> p) || p == 0 || p > 65535) {
            std::fprintf(stderr,
                         "error: cannot read a port from --port-file "
                         "%s\n",
                         port_file.c_str());
            return 2;
        }
        base.client.port = static_cast<std::uint16_t>(p);
    }
    if (base.client.port == 0) {
        std::fprintf(stderr,
                     "error: --port=N or --port-file=<path> required\n");
        return 2;
    }
    base.client.crc = flagBool(argc, argv, "crc");

    std::string shadow_out = flag(argc, argv, "shadow-out", "");
    std::string verify_shadow =
        flag(argc, argv, "verify-shadow", "");
    if (!verify_shadow.empty()) {
        // Verification replaces load generation: GET the shadowed
        // keys and judge the recovered store against the map.
        return verifyShadow(base.client, verify_shadow);
    }

    base.connections = static_cast<std::uint32_t>(
        flagU64(argc, argv, "connections", 1));
    base.ops = flagU64(argc, argv, "ops", 100000);
    base.rate = std::atof(flag(argc, argv, "rate", "50000").c_str());
    base.getFrac = std::atof(flag(argc, argv, "get", "0.7").c_str());
    base.eraseFrac =
        std::atof(flag(argc, argv, "erase", "0.05").c_str());
    base.workload = flag(argc, argv, "workload", "canneal");
    base.seed = flagU64(argc, argv, "seed", 1);
    base.pipelineDepth = flagU64(argc, argv, "pipeline-depth", 0);
    base.drainWaitMs = flagU64(argc, argv, "drain-wait-ms", 5000);

    std::string value_bytes = flag(argc, argv, "value-bytes", "");
    if (!value_bytes.empty()) {
        if (!shadow_out.empty()) {
            std::fprintf(stderr,
                         "error: --value-bytes is incompatible with "
                         "--shadow-out (u64 shadow maps)\n");
            return 2;
        }
        base.bytesMode = true;
        std::string body = value_bytes;
        if (body.rfind("fixed:", 0) == 0) {
            body = body.substr(6);
        }
        std::uint64_t lo = 0, hi = 0;
        if (body.rfind("uniform:", 0) == 0) {
            std::string rest = body.substr(8);
            std::size_t colon = rest.find(':');
            if (colon == std::string::npos) {
                std::fprintf(stderr,
                             "error: bad --value-bytes '%s' (valid: "
                             "fixed:N, uniform:LO:HI, N)\n",
                             value_bytes.c_str());
                return 2;
            }
            lo = std::strtoull(rest.substr(0, colon).c_str(), nullptr,
                               10);
            hi = std::strtoull(rest.substr(colon + 1).c_str(), nullptr,
                               10);
        } else {
            lo = hi = std::strtoull(body.c_str(), nullptr, 10);
        }
        if (lo < 4 || hi < lo || hi > net::kMaxValueBytes) {
            std::fprintf(stderr,
                         "error: --value-bytes range [%llu, %llu] must "
                         "satisfy 4 <= LO <= HI <= %zu\n",
                         static_cast<unsigned long long>(lo),
                         static_cast<unsigned long long>(hi),
                         net::kMaxValueBytes);
            return 2;
        }
        base.vbMin = static_cast<std::uint32_t>(lo);
        base.vbMax = static_cast<std::uint32_t>(hi);
    }

    auto kind_or =
        parseArrivalKind(flag(argc, argv, "arrivals", "poisson"));
    if (!kind_or) {
        std::fprintf(stderr, "error: %s\n",
                     kind_or.status().str().c_str());
        return 2;
    }
    base.arrivals = *kind_or;
    if (base.connections == 0 || base.ops == 0 || base.rate <= 0.0) {
        std::fprintf(stderr, "error: --connections, --ops and --rate "
                             "must be positive\n");
        return 2;
    }
    if (WorkloadRegistry::find(base.workload) == nullptr) {
        std::fprintf(stderr, "error: unknown --workload '%s'\n",
                     base.workload.c_str());
        return 2;
    }

    std::vector<double> rates =
        parseRateList(flag(argc, argv, "sweep-rates", ""));
    const bool sweep = !rates.empty();
    if (!sweep) rates.push_back(base.rate);

    JsonReport report(argc, argv, "net_loadgen");

    banner("zkv open-loop load (" + base.workload + ", " +
           std::string(arrivalKindName(base.arrivals)) +
           " arrivals, " + std::to_string(base.connections) +
           " conn)");
    std::printf("%12s %12s %10s %10s %10s %8s %8s %8s\n",
                "target_ops/s", "ops/s", "p50_ns", "p99_ns", "p999_ns",
                "complete", "lost", "xperr");

    std::size_t failed_points = 0;
    std::map<std::uint64_t, ShadowEntry> shadow_map;
    for (std::size_t pi = 0; pi < rates.size(); pi++) {
        PointConfig cfg = base;
        cfg.rate = rates[pi];
        // Sweep points scale op count with rate so every point runs a
        // comparable wall-clock window at its own intensity.
        if (sweep) {
            double secs = static_cast<double>(base.ops) / base.rate;
            cfg.ops = static_cast<std::uint64_t>(
                std::llround(secs * cfg.rate));
            if (cfg.ops == 0) cfg.ops = 1;
        }
        cfg.seed = SweepSpec::pointSeed(base.seed, pi);

        std::vector<ShadowLog> shadows;
        PointResult r = runPoint(
            cfg, shadow_out.empty() ? nullptr : &shadows);
        ConnStats a = aggregate(r, cfg.latencyBins);

        for (std::uint32_t tid = 0; tid < shadows.size(); tid++) {
            for (std::uint64_t key : shadows[tid].putKeys) {
                shadow_map[key].allowed.insert(zkvMix64(key) + tid);
            }
            for (std::uint64_t key : shadows[tid].eraseKeys) {
                shadow_map[key].erased = true;
            }
        }

        double achieved =
            r.seconds > 0.0
                ? static_cast<double>(a.completed) / r.seconds
                : 0.0;
        double p50 = histQuantileNs(a.latency, 0.50);
        double p99 = histQuantileNs(a.latency, 0.99);
        double p999 = histQuantileNs(a.latency, 0.999);
        std::printf("%12.0f %12.0f %10.0f %10.0f %10.0f %8" PRIu64
                    " %8" PRIu64 " %8" PRIu64 "\n",
                    cfg.rate, achieved, p50, p99, p999, a.completed,
                    a.lostInflight, a.transportErrors);

        if (a.completed == 0) failed_points++;

        JsonValue statuses = JsonValue::object();
        for (std::size_t c = 0; c < a.statusCounts.size(); c++) {
            if (a.statusCounts[c] == 0) continue;
            statuses.set(errorCodeName(static_cast<ErrorCode>(c)),
                         JsonValue(a.statusCounts[c]));
        }
        JsonValue timing = JsonValue::object();
        timing.set("seconds", JsonValue(r.seconds));
        timing.set("ops_per_sec", JsonValue(achieved));
        timing.set("p50_ns", JsonValue(p50));
        timing.set("p99_ns", JsonValue(p99));
        timing.set("p999_ns", JsonValue(p999));
        timing.set("late_sends", JsonValue(a.lateSends));

        JsonValue stats = JsonValue::object();
        stats.set("issued", JsonValue(a.issued));
        stats.set("completed", JsonValue(a.completed));
        stats.set("lost_inflight", JsonValue(a.lostInflight));
        stats.set("transport_errors", JsonValue(a.transportErrors));
        stats.set("reconnects", JsonValue(a.reconnects));
        stats.set("gets", JsonValue(a.gets));
        stats.set("get_hits", JsonValue(a.getHits));
        stats.set("puts", JsonValue(a.puts));
        stats.set("erases", JsonValue(a.erases));
        stats.set("verify_failures", JsonValue(a.verifyFailures));
        stats.set("statuses", std::move(statuses));

        report.add(
            {
                {"rate", JsonValue(cfg.rate)},
                {"arrivals",
                 JsonValue(std::string(arrivalKindName(cfg.arrivals)))},
                {"connections",
                 JsonValue(std::uint64_t{cfg.connections})},
                {"ops", JsonValue(cfg.ops)},
                {"workload", JsonValue(cfg.workload)},
                {"crc", JsonValue(cfg.client.crc)},
                {"bytes_mode", JsonValue(cfg.bytesMode)},
                {"value_bytes_min",
                 JsonValue(std::uint64_t{cfg.vbMin})},
                {"value_bytes_max",
                 JsonValue(std::uint64_t{cfg.vbMax})},
                {"timing", std::move(timing)},
            },
            std::move(stats));
    }

    if (!shadow_out.empty()) {
        if (!writeShadow(shadow_out, shadow_map)) {
            std::fprintf(stderr,
                         "error: cannot write --shadow-out %s\n",
                         shadow_out.c_str());
            return 1;
        }
        std::fprintf(stderr,
                     "shadow: %zu key(s) recorded -> %s\n",
                     shadow_map.size(), shadow_out.c_str());
    }

    bool wrote = report.writeIfRequested();
    if (failed_points > 0 || !wrote) return 1;
    return 0;
}
