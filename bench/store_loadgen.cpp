/**
 * @file
 * Multithreaded closed-loop load generator for the zkv store
 * (src/store, docs/store.md): the concurrent-throughput companion to
 * the trace-driven simulator benches. Sweeps shard count, worker
 * count, and array design (zcache vs set-associative vs
 * skew-associative shards) over a synthetic workload key stream and
 * reports aggregate + per-thread throughput and latency percentiles.
 *
 * Flags (all grid axes take comma-separated lists):
 *   --threads=1,8        worker threads per point
 *   --shards=4           store shards (banks)
 *   --array=z            shard design: z | sa | skew
 *   --ways=4             ways per shard array
 *   --cands=0            zcache early-stop cap (0 = full walk)
 *   --blocks=4096        blocks (keys) per shard
 *   --levels=2           zcache walk levels
 *   --policy=lru         replacement policy
 *   --lock=mutex         shard lock: mutex | spin
 *   --workload=canneal   WorkloadRegistry profile for key streams
 *   --ops=200000         operations per thread
 *   --get=0.7            get fraction   (rest after erase = puts)
 *   --erase=0.05         erase fraction
 *   --read-pct=95        shorthand: gets = N%, erases = 0, puts = rest
 *                        (overrides --get/--erase)
 *   --read-path=locked   get-path mode: locked | optimistic
 *                        (docs/store.md "Read path"; optimistic = the
 *                        lock-free seqlock fast path, no LRU promotion)
 *   --seed=1             base seed (per-point seeds derived)
 *   --json=<path>        standard JSON report (docs/store.md schema)
 *
 * Compressed-value mode (docs/compression.md; default off):
 *   --value-bytes=<dist> switch the store to variable-length byte
 *                        payloads with deterministic per-key lengths:
 *                        fixed:N | uniform:LO:HI | N (= fixed:N).
 *                        Lengths must be >= 4 (the writer-tid prefix)
 *                        and <= the 224-byte value cap. Every get hit
 *                        is verified byte-exactly against the
 *                        regenerated payload.
 *   --codec=bdi          value codec: bdi | none (passthrough). The
 *                        run report gains a "compression" block:
 *                        ratio, resident_bytes_per_key, codec totals.
 *                        Incompatible with --read-path=optimistic and
 *                        --data-dir (the store rejects both).
 *
 * Scaling mode (docs/performance.md):
 *   --scaling            replace --threads with 1,2,4,...,nproc and
 *                        emit a per-thread-count throughput + p99
 *                        table (stdout) and a top-level "scaling"
 *                        block in the JSON report, with get-throughput
 *                        speedups relative to the 1-thread point.
 *                        Defaults --read-path to optimistic (the mode
 *                        whose scaling the CI gate asserts); other
 *                        grid axes are clamped to their first value.
 *
 * Open-loop mode (net/openloop.hpp, docs/server.md):
 *   --open-loop --rate=N  issue ops at scheduled arrival times (N
 *                         TOTAL ops/sec across threads) and measure
 *                         latency from the INTENDED arrival — the
 *                         coordinated-omission-safe measurement
 *                         bench/net_loadgen.cpp makes over the wire,
 *                         here without the network. --rate=N alone
 *                         implies --open-loop.
 *   --arrivals=poisson    arrival process: poisson | fixed
 *
 * Durability (docs/durability.md; default off, zero overhead):
 *   --data-dir=<path>        enable the persist tier rooted here; the
 *                            store recovers from any prior state before
 *                            load and drains the op log before the
 *                            deterministic stats dump
 *   --fsync=always           always | interval | never (default always)
 *   --fsync-interval-ms=50   group-commit window for --fsync=interval
 *   --snapshot-every-ops=N   compaction snapshot cadence (0 = never)
 *   --persist-queue-cap=N    per-shard writer queue depth (default 4096)
 *   --persist-backpressure=block  block | drop (drop counts, never
 *                            silent; rejected with --fsync=always)
 * With more than one grid point, each point persists under
 * <data-dir>/pointN so points never share a log.
 *
 * Live telemetry (docs/telemetry.md; default off, zero overhead):
 *   --trace-out=<path>       Chrome trace-event JSON (Perfetto-loadable)
 *   --metrics-out=<path>     windowed metrics NDJSON
 *   --prom-out=<path>        Prometheus text exposition (rewritten live)
 *   --metrics-interval-ms=N  sampling window (default 100)
 *   --ring-cap=N             per-thread trace ring capacity (default 64Ki)
 * With more than one grid point, each point writes to
 * <path>.pointN<ext> so traces are never interleaved.
 *
 *   --jobs=1             grid points in flight; points are themselves
 *                        multithreaded, so the default measures one
 *                        point at a time (unlike simulator sweeps,
 *                        where --jobs defaults to all cores)
 *   --no-progress        suppress the stderr progress meter
 *
 * Exit codes follow the bench protocol (docs/robustness.md): 0 clean,
 * 1 failed grid points or unwritable output, 2 usage error.
 *
 * stdout is NOT deterministic — every row carries wall-clock-derived
 * throughput. In the JSON report, run "stats" blocks are deterministic
 * for threads=1 points; "timing" tags and the top-level "perf" block
 * are wall-clock (docs/observability.md).
 */

#include <cinttypes>
#include <cstdio>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "store/loadgen.hpp"
#include "trace/workloads.hpp"

namespace {

using namespace zc;
using namespace zc::benchutil;

std::vector<std::uint64_t>
parseU64List(const std::string& csv)
{
    std::vector<std::uint64_t> out;
    std::size_t pos = 0;
    while (pos <= csv.size()) {
        std::size_t comma = csv.find(',', pos);
        if (comma == std::string::npos) comma = csv.size();
        std::string item = csv.substr(pos, comma - pos);
        if (!item.empty()) {
            out.push_back(std::strtoull(item.c_str(), nullptr, 10));
        }
        pos = comma + 1;
    }
    return out;
}

Expected<ArrayKind>
parseStoreArray(const std::string& name)
{
    if (name == "z") return ArrayKind::ZCache;
    if (name == "sa") return ArrayKind::SetAssoc;
    if (name == "skew") return ArrayKind::SkewAssoc;
    return Status::invalidArgument("store_loadgen: unknown --array '" +
                                   name + "' (valid: z, sa, skew)");
}

std::vector<std::string>
parseStrList(const std::string& csv)
{
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos <= csv.size()) {
        std::size_t comma = csv.find(',', pos);
        if (comma == std::string::npos) comma = csv.size();
        std::string item = csv.substr(pos, comma - pos);
        if (!item.empty()) out.push_back(item);
        pos = comma + 1;
    }
    return out;
}

struct Point
{
    LoadGenConfig cfg;
    std::string design; ///< shard array label
};

/**
 * Parse a --value-bytes distribution: "fixed:N", "uniform:LO:HI", or a
 * bare "N" (= fixed:N). Returns {lo, hi} (inclusive).
 */
Expected<std::pair<std::uint32_t, std::uint32_t>>
parseValueBytesDist(const std::string& spec)
{
    auto bad = [&] {
        return Status::invalidArgument(
            "store_loadgen: bad --value-bytes '" + spec +
            "' (valid: fixed:N, uniform:LO:HI, N)");
    };
    std::string body = spec;
    bool uniform = false;
    if (spec.rfind("fixed:", 0) == 0) {
        body = spec.substr(6);
    } else if (spec.rfind("uniform:", 0) == 0) {
        body = spec.substr(8);
        uniform = true;
    }
    if (body.empty()) return bad();
    if (!uniform) {
        char* end = nullptr;
        std::uint64_t n = std::strtoull(body.c_str(), &end, 10);
        if (end == nullptr || *end != '\0') return bad();
        return std::pair<std::uint32_t, std::uint32_t>{
            static_cast<std::uint32_t>(n), static_cast<std::uint32_t>(n)};
    }
    std::size_t colon = body.find(':');
    if (colon == std::string::npos) return bad();
    std::string lo_s = body.substr(0, colon);
    std::string hi_s = body.substr(colon + 1);
    char* end = nullptr;
    std::uint64_t lo = std::strtoull(lo_s.c_str(), &end, 10);
    if (end == nullptr || *end != '\0') return bad();
    std::uint64_t hi = std::strtoull(hi_s.c_str(), &end, 10);
    if (end == nullptr || *end != '\0') return bad();
    return std::pair<std::uint32_t, std::uint32_t>{
        static_cast<std::uint32_t>(lo), static_cast<std::uint32_t>(hi)};
}

/**
 * Per-point output path: the base path for a single-point grid,
 * "<stem>.pointN<ext>" otherwise, so concurrent or sequential points
 * never clobber one another's telemetry files.
 */
std::string
pointPath(const std::string& base, std::size_t index,
          std::size_t grid_size)
{
    if (base.empty() || grid_size <= 1) return base;
    std::size_t slash = base.find_last_of('/');
    std::size_t dot = base.find_last_of('.');
    if (dot == std::string::npos ||
        (slash != std::string::npos && dot < slash)) {
        return base + ".point" + std::to_string(index);
    }
    return base.substr(0, dot) + ".point" + std::to_string(index) +
           base.substr(dot);
}

} // namespace

int
main(int argc, char** argv)
{
    auto threads_list =
        parseU64List(flag(argc, argv, "threads", "1"));
    auto shards_list = parseU64List(flag(argc, argv, "shards", "4"));
    auto ways_list = parseU64List(flag(argc, argv, "ways", "4"));
    auto cands_list = parseU64List(flag(argc, argv, "cands", "0"));
    auto array_list = parseStrList(flag(argc, argv, "array", "z"));
    std::uint64_t blocks = flagU64(argc, argv, "blocks", 4096);
    std::uint64_t levels = flagU64(argc, argv, "levels", 2);
    std::uint64_t ops = flagU64(argc, argv, "ops", 200000);
    double get_frac = std::atof(flag(argc, argv, "get", "0.7").c_str());
    double erase_frac =
        std::atof(flag(argc, argv, "erase", "0.05").c_str());
    bool scaling = flagBool(argc, argv, "scaling");
    std::string read_pct_str = flag(argc, argv, "read-pct", "");
    if (!read_pct_str.empty()) {
        double read_pct = std::atof(read_pct_str.c_str());
        if (read_pct < 0.0 || read_pct > 100.0) {
            std::fprintf(stderr,
                         "error: --read-pct must be in [0, 100]\n");
            return 2;
        }
        get_frac = read_pct / 100.0;
        erase_frac = 0.0;
    }
    std::string read_path_name = flag(argc, argv, "read-path",
                                      scaling ? "optimistic" : "locked");
    std::string policy_name = flag(argc, argv, "policy", "lru");
    std::string lock_name = flag(argc, argv, "lock", "mutex");
    std::string workload = flag(argc, argv, "workload", "canneal");
    std::uint64_t seed = flagU64(argc, argv, "seed", 1);
    bool open_loop = flagBool(argc, argv, "open-loop");
    double open_rate = std::atof(flag(argc, argv, "rate", "0").c_str());
    std::string arrivals_name = flag(argc, argv, "arrivals", "poisson");
    std::string trace_out = flag(argc, argv, "trace-out", "");
    std::string metrics_out = flag(argc, argv, "metrics-out", "");
    std::string prom_out = flag(argc, argv, "prom-out", "");
    std::uint64_t metrics_interval =
        flagU64(argc, argv, "metrics-interval-ms", 100);
    std::uint64_t ring_cap = flagU64(argc, argv, "ring-cap", 1u << 16);
    std::string data_dir = flag(argc, argv, "data-dir", "");
    std::string fsync_name = flag(argc, argv, "fsync", "always");
    std::uint64_t fsync_interval =
        flagU64(argc, argv, "fsync-interval-ms", 50);
    std::uint64_t snapshot_every =
        flagU64(argc, argv, "snapshot-every-ops", 0);
    std::uint64_t persist_cap =
        flagU64(argc, argv, "persist-queue-cap", 4096);
    std::string backpressure_name =
        flag(argc, argv, "persist-backpressure", "block");
    std::string value_bytes_spec = flag(argc, argv, "value-bytes", "");
    std::string codec_name = flag(argc, argv, "codec", "bdi");

    std::uint32_t vb_min = 0, vb_max = 0;
    CodecKind codec = CodecKind::None;
    const bool bytes_mode = !value_bytes_spec.empty();
    if (bytes_mode) {
        auto dist = parseValueBytesDist(value_bytes_spec);
        if (!dist) {
            std::fprintf(stderr, "error: %s\n",
                         dist.status().str().c_str());
            return 2;
        }
        vb_min = dist->first;
        vb_max = dist->second;
        auto ck = parseCodecKind(codec_name);
        if (!ck) {
            std::fprintf(stderr, "error: %s\n",
                         ck.status().str().c_str());
            return 2;
        }
        codec = *ck;
    }

    auto policy = parsePolicyKind(policy_name);
    if (!policy) {
        std::fprintf(stderr, "error: %s\n", policy.status().str().c_str());
        return 2;
    }
    if (lock_name != "mutex" && lock_name != "spin") {
        std::fprintf(stderr,
                     "error: unknown --lock '%s' (valid: mutex, spin)\n",
                     lock_name.c_str());
        return 2;
    }
    if (read_path_name != "locked" && read_path_name != "optimistic") {
        std::fprintf(stderr,
                     "error: unknown --read-path '%s' (valid: locked, "
                     "optimistic)\n",
                     read_path_name.c_str());
        return 2;
    }
    const ReadPath read_path = read_path_name == "optimistic"
                                   ? ReadPath::Optimistic
                                   : ReadPath::Locked;
    if (scaling) {
        // One axis only: the thread count, 1,2,4,... up to the core
        // count but never stopping short of 8 — the CI gate compares
        // the 8-thread and 1-thread points, and a lock-free read path
        // should hold its plateau even oversubscribed. Other list axes
        // collapse to their first value so every point differs in
        // threads alone.
        unsigned nproc = std::thread::hardware_concurrency();
        if (nproc == 0) nproc = 8;
        std::uint64_t top = nproc < 8 ? 8 : nproc;
        threads_list.clear();
        for (std::uint64_t t = 1; t < top; t *= 2) {
            threads_list.push_back(t);
        }
        threads_list.push_back(top);
        shards_list.resize(1);
        ways_list.resize(1);
        cands_list.resize(1);
        array_list.resize(1);
    }
    if (WorkloadRegistry::find(workload) == nullptr) {
        std::fprintf(stderr, "error: unknown --workload '%s'\n",
                     workload.c_str());
        return 2;
    }
    if (open_loop && open_rate <= 0.0) {
        std::fprintf(stderr,
                     "error: --open-loop needs --rate=N (ops/sec)\n");
        return 2;
    }
    auto arrivals = parseArrivalKind(arrivals_name);
    if (!arrivals) {
        std::fprintf(stderr, "error: %s\n",
                     arrivals.status().str().c_str());
        return 2;
    }

    persist::PersistConfig persist_cfg;
    persist_cfg.dataDir = data_dir;
    auto fsync_policy = persist::parseFsyncPolicy(fsync_name);
    if (!fsync_policy) {
        std::fprintf(stderr, "error: %s\n",
                     fsync_policy.status().str().c_str());
        return 2;
    }
    persist_cfg.fsync = *fsync_policy;
    persist_cfg.fsyncIntervalMs =
        static_cast<std::uint32_t>(fsync_interval);
    persist_cfg.snapshotEveryOps = snapshot_every;
    persist_cfg.queueCap = static_cast<std::size_t>(persist_cap);
    auto backpressure = persist::parseBackpressure(backpressure_name);
    if (!backpressure) {
        std::fprintf(stderr, "error: %s\n",
                     backpressure.status().str().c_str());
        return 2;
    }
    persist_cfg.backpressure = *backpressure;
    if (Status s = persist_cfg.validate(); !s.isOk()) {
        std::fprintf(stderr, "error: %s\n", s.str().c_str());
        return 2;
    }

    // Grid: array x ways x cands x shards x threads, declared before
    // execution so per-point seeds are pure functions of grid position.
    std::vector<Point> grid;
    for (const std::string& array_name : array_list) {
        auto kind = parseStoreArray(array_name);
        if (!kind) {
            std::fprintf(stderr, "error: %s\n",
                         kind.status().message().c_str());
            return 2;
        }
        for (std::uint64_t ways : ways_list) {
            for (std::uint64_t cands : cands_list) {
                for (std::uint64_t shards : shards_list) {
                    for (std::uint64_t threads : threads_list) {
                        Point p;
                        p.cfg.store.shards =
                            static_cast<std::uint32_t>(shards);
                        p.cfg.store.array.kind = *kind;
                        p.cfg.store.array.blocks =
                            static_cast<std::uint32_t>(blocks);
                        p.cfg.store.array.ways =
                            static_cast<std::uint32_t>(ways);
                        p.cfg.store.array.levels =
                            static_cast<std::uint32_t>(levels);
                        p.cfg.store.array.maxCandidates =
                            static_cast<std::uint32_t>(cands);
                        p.cfg.store.array.policy = *policy;
                        p.cfg.store.array.seed = SweepSpec::pointSeed(
                            seed, grid.size());
                        p.cfg.store.lock = lock_name == "spin"
                                               ? ShardLockKind::Spin
                                               : ShardLockKind::Mutex;
                        p.cfg.store.readPath = read_path;
                        p.cfg.threads =
                            static_cast<std::uint32_t>(threads);
                        p.cfg.opsPerThread = ops;
                        p.cfg.getFrac = get_frac;
                        p.cfg.eraseFrac = erase_frac;
                        p.cfg.workload = workload;
                        p.cfg.openLoopRate = open_rate;
                        p.cfg.arrivals = *arrivals;
                        p.cfg.seed = SweepSpec::pointSeed(
                            seed ^ 0x6c67ULL, grid.size());
                        p.cfg.obs.tracePath = trace_out;
                        p.cfg.obs.metricsPath = metrics_out;
                        p.cfg.obs.promPath = prom_out;
                        p.cfg.obs.metricsIntervalMs =
                            static_cast<std::uint32_t>(metrics_interval);
                        p.cfg.obs.ringCapacity =
                            static_cast<std::size_t>(ring_cap);
                        p.cfg.store.persist = persist_cfg;
                        if (bytes_mode) {
                            p.cfg.store.value.maxBytes =
                                kZkvMaxValueBytes;
                            p.cfg.store.value.codec = codec;
                            p.cfg.valueBytesMin = vb_min;
                            p.cfg.valueBytesMax = vb_max;
                        }
                        p.design = p.cfg.store.array.label();
                        grid.push_back(std::move(p));
                    }
                }
            }
        }
    }

    // Per-point telemetry paths (suffixed when the grid has several
    // points) must be fixed before execution so they are pure
    // functions of grid position, like the per-point seeds.
    for (std::size_t i = 0; i < grid.size(); i++) {
        grid[i].cfg.obs.tracePath =
            pointPath(trace_out, i, grid.size());
        grid[i].cfg.obs.metricsPath =
            pointPath(metrics_out, i, grid.size());
        grid[i].cfg.obs.promPath = pointPath(prom_out, i, grid.size());
        // Data dirs are directories, not files: suffix with a
        // subdirectory so grid points never share an op log.
        if (!data_dir.empty() && grid.size() > 1) {
            grid[i].cfg.store.persist.dataDir =
                data_dir + "/point" + std::to_string(i);
        }
    }

    JsonReport report(argc, argv, "store_loadgen");

    SweepOptions opts = sweepOptions(argc, argv, "store_loadgen");
    // Points are themselves multithreaded: measure one at a time
    // unless the caller explicitly asks for overlap.
    if (flag(argc, argv, "jobs", "").empty()) opts.jobs = 1;
    opts.journalPath.clear();
    opts.resumePath.clear();

    auto outcomes = runGrid<LoadGenResult>(
        grid.size(),
        [&](std::size_t i) {
            return std::move(runLoadGen(grid[i].cfg)).valueOrThrow();
        },
        opts);

    banner("zkv store load generation (" + workload + ", " +
           std::to_string(ops) + " ops/thread)");
    std::printf("%-10s %7s %8s %6s %12s %7s %10s %10s %8s\n", "design",
                "shards", "threads", "lock", "ops/s", "hit%", "p50_ns",
                "p99_ns", "verify");
    for (const auto& o : outcomes) {
        if (!o.ok) continue;
        const Point& p = grid[o.index];
        const LoadGenResult& r = o.result;
        ThreadStats agg = r.aggregate();
        double hit_pct =
            agg.gets ? 100.0 * static_cast<double>(agg.getHits) /
                           static_cast<double>(agg.gets)
                     : 0.0;
        const JsonValue timing = r.timing();
        const JsonValue* lat = timing.find("latency");
        double p50 = lat->find("p50_ns")->asDouble();
        double p99 = lat->find("p99_ns")->asDouble();
        std::printf("%-10s %7u %8u %6s %12.0f %6.1f%% %10.0f %10.0f "
                    "%8" PRIu64 "\n",
                    p.design.c_str(), p.cfg.store.shards, p.cfg.threads,
                    shardLockKindName(p.cfg.store.lock), r.opsPerSec,
                    hit_pct, p50, p99, agg.verifyFailures);

        JsonValue compj = JsonValue::object();
        if (bytes_mode) {
            const ZkvCompressionStats& cp = r.compression;
            compj.set("codec",
                      JsonValue(std::string(codecKindName(codec))));
            compj.set("value_bytes_min",
                      JsonValue(std::uint64_t{p.cfg.valueBytesMin}));
            compj.set("value_bytes_max",
                      JsonValue(std::uint64_t{p.cfg.valueBytesMax}));
            compj.set("compress_calls", JsonValue(cp.compressCalls));
            compj.set("decompress_calls", JsonValue(cp.decompressCalls));
            compj.set("raw_bytes_total", JsonValue(cp.rawBytesTotal));
            compj.set("stored_bytes_total",
                      JsonValue(cp.storedBytesTotal));
            compj.set("resident_raw_bytes",
                      JsonValue(cp.residentRawBytes));
            compj.set("resident_stored_bytes",
                      JsonValue(cp.residentStoredBytes));
            compj.set("ratio", JsonValue(cp.ratio()));
            compj.set("resident_keys", JsonValue(r.residentKeys));
            compj.set(
                "resident_bytes_per_key",
                JsonValue(r.residentKeys > 0
                              ? static_cast<double>(
                                    cp.residentStoredBytes) /
                                    static_cast<double>(r.residentKeys)
                              : 0.0));
        }

        JsonValue obs = JsonValue::object();
        if (p.cfg.obs.anyEnabled()) {
            obs.set("trace_path", JsonValue(p.cfg.obs.tracePath));
            obs.set("metrics_path", JsonValue(p.cfg.obs.metricsPath));
            obs.set("ops_recorded", JsonValue(r.obsRecorded));
            obs.set("ops_dropped", JsonValue(r.obsDropped));
            obs.set("threads", JsonValue(r.obsThreads));
            obs.set("metrics_windows", JsonValue(r.obsWindows));
        }

        report.add(
            {
                {"design", JsonValue(p.design)},
                {"workload", JsonValue(p.cfg.workload)},
                {"shards", JsonValue(std::uint64_t{p.cfg.store.shards})},
                {"threads", JsonValue(std::uint64_t{p.cfg.threads})},
                {"lock",
                 JsonValue(std::string(
                     shardLockKindName(p.cfg.store.lock)))},
                {"read_path",
                 JsonValue(std::string(
                     readPathName(p.cfg.store.readPath)))},
                {"ops_per_thread", JsonValue(p.cfg.opsPerThread)},
                {"open_loop_rate", JsonValue(p.cfg.openLoopRate)},
                {"arrivals",
                 JsonValue(std::string(
                     arrivalKindName(p.cfg.arrivals)))},
                {"timing", timing},
                {"compression", std::move(compj)},
                {"obs", std::move(obs)},
            },
            r.storeStats);
    }

    if (scaling) {
        // Scaling summary: one row per thread count, speedups relative
        // to the 1-thread point. Get throughput (not overall ops/s) is
        // what the CI gate asserts — the optimistic path only changes
        // gets, and a put-heavy mix would mask read-path scaling.
        struct ScalRow
        {
            std::uint32_t threads = 0;
            double opsPerSec = 0.0;
            double getsPerSec = 0.0;
            double p99 = 0.0;
        };
        std::vector<ScalRow> rows;
        for (const auto& o : outcomes) {
            if (!o.ok) continue;
            const Point& p = grid[o.index];
            const LoadGenResult& r = o.result;
            ThreadStats agg = r.aggregate();
            ScalRow row;
            row.threads = p.cfg.threads;
            row.opsPerSec = r.opsPerSec;
            row.getsPerSec =
                r.seconds > 0.0
                    ? static_cast<double>(agg.gets) / r.seconds
                    : 0.0;
            row.p99 = r.timing().find("latency")->find("p99_ns")
                          ->asDouble();
            rows.push_back(row);
        }
        double base_gets = 0.0;
        double base_ops = 0.0;
        for (const ScalRow& row : rows) {
            if (row.threads == 1) {
                base_gets = row.getsPerSec;
                base_ops = row.opsPerSec;
            }
        }
        banner("get-throughput scaling (read path " + read_path_name +
               ", " + std::to_string(static_cast<int>(get_frac * 100.0)) +
               "% gets)");
        std::printf("%8s %14s %14s %10s %9s\n", "threads", "ops/s",
                    "gets/s", "p99_ns", "speedup");
        JsonValue points = JsonValue::array();
        for (const ScalRow& row : rows) {
            double speedup =
                base_gets > 0.0 ? row.getsPerSec / base_gets : 0.0;
            std::printf("%8u %14.0f %14.0f %10.0f %8.2fx\n", row.threads,
                        row.opsPerSec, row.getsPerSec, row.p99, speedup);
            JsonValue rec = JsonValue::object();
            rec.set("threads", JsonValue(std::uint64_t{row.threads}));
            rec.set("ops_per_sec", JsonValue(row.opsPerSec));
            rec.set("gets_per_sec", JsonValue(row.getsPerSec));
            rec.set("p99_ns", JsonValue(row.p99));
            rec.set("get_speedup", JsonValue(speedup));
            rec.set("ops_speedup",
                    JsonValue(base_ops > 0.0 ? row.opsPerSec / base_ops
                                             : 0.0));
            points.push(std::move(rec));
        }
        JsonValue scal = JsonValue::object();
        scal.set("read_path", JsonValue(read_path_name));
        scal.set("workload", JsonValue(workload));
        scal.set("get_frac", JsonValue(get_frac));
        scal.set("ops_per_thread", JsonValue(ops));
        scal.set("points", std::move(points));
        report.setBlock("scaling", std::move(scal));
    }

    if (!trace_out.empty()) {
        std::uint64_t rec = 0, drop = 0;
        for (const auto& o : outcomes) {
            if (!o.ok) continue;
            rec += o.result.obsRecorded;
            drop += o.result.obsDropped;
        }
        // Notice, not report output: stdout stays byte-identical with or
        // without the flag (docs/observability.md).
        std::fprintf(stderr,
                     "trace: %" PRIu64 " op spans recorded, %" PRIu64
                     " dropped (out of %" PRIu64 " ops) -> %s\n",
                     rec, drop, rec + drop, trace_out.c_str());
    }

    std::size_t failures = reportGridFailures(outcomes, "store_loadgen");
    bool wrote = report.writeIfRequested();
    if (failures > 0 || !wrote) return 1;
    return 0;
}
