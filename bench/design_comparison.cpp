/**
 * @file
 * Section II in one table — every alternative-associativity approach
 * the paper surveys, implemented and compared head to head on equal
 * capacity: set-associative (bit-select and hashed), victim cache,
 * V-Way, skew-associative, zcaches, random-candidates and fully
 * associative. Reports miss rate, mean eviction priority (the Section
 * IV quality metric), tag/data traffic per access, and each design's
 * structural overhead. Rows run concurrently on the sweep engine
 * (--jobs=N, docs/runner.md).
 *
 * Expected shape: quality ordering roughly
 *   SA < SA+hash ~ SA+victim < skew < V-Way ~ Z4/16 < Z4/52 < FA,
 * with the zcache matching the indirection designs' quality *without*
 * their 2x tag arrays or serialized tag->data lookups, and the victim
 * cache only helping the short-reuse-conflict slice.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "assoc/eviction_tracker.hpp"
#include "cache/array_factory.hpp"
#include "cache/cache_model.hpp"
#include "common/stats_registry.hpp"
#include "runner/sweep.hpp"
#include "trace/generator.hpp"

#include "bench_util.hpp"

using namespace zc;

namespace {

struct Row
{
    std::string label;
    ArraySpec spec;
    const char* overhead;
};

struct RowResult
{
    double missRate = 0.0;
    double meanEvictionPriority = 0.0;
    double tagPerAccess = 0.0;
    double dataPerAccess = 0.0;
    JsonValue stats;
};

RowResult
runRow(const Row& row, std::uint64_t accesses, std::uint64_t footprint,
       bool want_stats)
{
    CacheModel m(makeArray(row.spec));
    EvictionPriorityTracker tracker(100, 8);
    tracker.attach(m.array());

    // Mixed traffic: hot zipf + a power-of-two-strided component that
    // punishes bit-select indexing.
    ZipfGenerator hot(0, footprint, 0.9, 17);
    StridedGenerator strided(1 << 24, footprint / 2, 64, 2);
    Pcg32 rng(18);
    for (std::uint64_t i = 0; i < accesses; i++) {
        m.access(rng.uniform() < 0.75 ? hot.next().lineAddr
                                      : strided.next().lineAddr);
    }

    const ArrayStats& s = m.array().stats();
    double per = static_cast<double>(m.stats().accesses);
    RowResult res;
    res.missRate = m.stats().missRate();
    res.meanEvictionPriority = tracker.histogram().mean();
    res.tagPerAccess = static_cast<double>(s.tagReads + s.tagWrites) / per;
    res.dataPerAccess = static_cast<double>(s.dataReads + s.dataWrites) / per;
    if (want_stats) {
        StatsRegistry reg;
        StatGroup& sum = reg.root().group("summary", "headline metrics");
        sum.addConst("accesses", "model accesses",
                     JsonValue(m.stats().accesses));
        sum.addConst("miss_rate", "model miss rate",
                     JsonValue(m.stats().missRate()));
        sum.addConst("mean_eviction_priority", "Section IV quality metric",
                     JsonValue(tracker.histogram().mean()));
        m.array().registerStats(reg.root().group("array", "cache array"));
        res.stats = reg.toJson();
    }
    return res;
}

} // namespace

int
main(int argc, char** argv)
{
    std::uint32_t blocks = static_cast<std::uint32_t>(
        benchutil::flagU64(argc, argv, "blocks", 16384));
    std::uint64_t accesses =
        benchutil::flagU64(argc, argv, "accesses", 1200000);
    std::uint64_t footprint = blocks * 5;
    benchutil::JsonReport report(argc, argv, "design_comparison");

    auto spec = [&](ArrayKind kind, std::uint32_t ways,
                    std::uint32_t levels_or_cands, HashKind hk) {
        ArraySpec s;
        s.kind = kind;
        s.blocks = blocks;
        s.ways = ways;
        s.levels = levels_or_cands;
        s.candidates = levels_or_cands == 0 ? 16 : levels_or_cands;
        s.hashKind = hk;
        s.policy = PolicyKind::Lru;
        return s;
    };

    std::vector<Row> rows;
    rows.push_back({"DM+col", spec(ArrayKind::ColumnAssoc, 1, 0,
                                   HashKind::BitSelect),
                    "rehash bit, swaps, variable hit latency"});
    rows.push_back({"SA-4", spec(ArrayKind::SetAssoc, 4, 0,
                                 HashKind::BitSelect),
                    "none (the baseline everything fights)"});
    rows.push_back({"SA-4+h3", spec(ArrayKind::SetAssoc, 4, 0, HashKind::H3),
                    "hash logic"});
    rows.push_back({"SA-32+h3",
                    spec(ArrayKind::SetAssoc, 32, 0, HashKind::H3),
                    "8x tag port width, +2 cycles, ~2-3.3x hit energy"});
    {
        ArraySpec s = spec(ArrayKind::VictimCache, 4, 0, HashKind::H3);
        s.victimBlocks = 64;
        rows.push_back({"SA-4+vict", s, "64-entry FA buffer + probes"});
    }
    {
        ArraySpec s = spec(ArrayKind::VWay, 8, 0, HashKind::H3);
        s.candidates = 16;
        s.tagRatio = 2;
        rows.push_back({"VWay8/16", s,
                        "2x tag array, serialized tag->data"});
    }
    rows.push_back({"Skew-4", spec(ArrayKind::SkewAssoc, 4, 1, HashKind::H3),
                    "per-way hash logic"});
    rows.push_back({"Z4/16", spec(ArrayKind::ZCache, 4, 2, HashKind::H3),
                    "walk state (~hundred bits), walk tag bandwidth"});
    rows.push_back({"Z4/52", spec(ArrayKind::ZCache, 4, 3, HashKind::H3),
                    "walk state (~hundred bits), walk tag bandwidth"});
    rows.push_back({"Rand/16",
                    spec(ArrayKind::RandomCandidates, 1, 0, HashKind::H3),
                    "(unrealizable reference)"});
    rows.push_back({"FA", spec(ArrayKind::FullyAssoc, 1, 0, HashKind::H3),
                    "(unrealizable reference)"});

    auto outcomes = runGrid<RowResult>(
        rows.size(),
        [&](std::size_t i) {
            return runRow(rows[i], accesses, footprint, report.enabled());
        },
        benchutil::sweepOptions(argc, argv, "design_comparison"));
    std::size_t failed =
        benchutil::reportGridFailures(outcomes, "design_comparison");
    for (std::size_t i = 0; i < rows.size(); i++) {
        if (!outcomes[i].ok) continue;
        report.add({{"design", JsonValue(rows[i].label)}},
                   std::move(outcomes[i].result.stats));
    }

    std::printf("Section II survey on equal capacity (%u blocks, zipf + "
                "strided traffic, LRU)\n\n", blocks);
    std::printf("%-12s %9s %9s %10s %10s   %s\n", "design", "missrate",
                "mean-e", "tag/acc", "data/acc", "structural overhead");
    for (std::size_t i = 0; i < rows.size(); i++) {
        const RowResult& r = outcomes[i].result;
        std::printf("%-12s %9.4f %9.3f %10.2f %10.3f   %s\n",
                    rows[i].label.c_str(), r.missRate,
                    r.meanEvictionPriority, r.tagPerAccess, r.dataPerAccess,
                    rows[i].overhead);
    }

    std::printf("\nExpected shape: zcaches reach indirection-class miss "
                "rates and candidate quality without 2x tags or extra hit "
                "latency; the victim buffer only recovers short-reuse "
                "conflicts; bit-select SA suffers the strided traffic.\n");
    return (report.writeIfRequested() && failed == 0) ? 0 : 1;
}
