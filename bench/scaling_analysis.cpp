/**
 * @file
 * Capacity-scaling ablation (ours): where does associativity matter?
 *
 * Sweeps the shared L2 from 2 MB to 16 MB for the baseline 4-way SA,
 * the 32-way SA and the Z4/52 on capacity-sensitive workloads. The
 * (workload x size x design) grid is declared as one SweepSpec and
 * executed in parallel by the SweepRunner (--jobs=N, docs/runner.md).
 * The expected shape: associativity's MPKI advantage is largest when
 * the working set sits *near* the cache size (replacement quality
 * decides what survives) and shrinks at both extremes — tiny caches
 * thrash and huge caches fit everything — while the zcache's advantage
 * over SA-32 in IPC persists everywhere because its hit latency never
 * pays the wide-tag tax.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "runner/sweep.hpp"
#include "sim/experiment.hpp"

#include "bench_util.hpp"

using namespace zc;

namespace {

struct Design
{
    const char* label;
    ArrayKind kind;
    std::uint32_t ways;
    std::uint32_t levels;
};

RunParams
cellParams(const std::string& workload, std::uint64_t l2_bytes,
           const Design& d, std::uint64_t instr)
{
    RunParams p;
    p.workload = workload;
    p.base.l2SizeBytes = l2_bytes;
    p.l2Spec.kind = d.kind;
    p.l2Spec.ways = d.ways;
    p.l2Spec.levels = d.levels;
    p.l2Spec.hashKind = HashKind::H3;
    p.l2Spec.policy = PolicyKind::BucketedLru;
    p.warmupInstr = instr;
    p.measureInstr = instr;
    return p;
}

} // namespace

int
main(int argc, char** argv)
{
    std::uint64_t instr = benchutil::flagU64(argc, argv, "instr", 100000);
    benchutil::JsonReport report(argc, argv, "scaling_analysis");
    const std::vector<std::string> workloads{"soplex", "sphinx3",
                                             "cactusADM", "gafort"};
    const std::vector<std::uint64_t> sizes{
        std::uint64_t{2} << 20, std::uint64_t{4} << 20,
        std::uint64_t{8} << 20, std::uint64_t{16} << 20};
    const std::vector<Design> designs{
        {"SA-4", ArrayKind::SetAssoc, 4, 1},
        {"SA-32", ArrayKind::SetAssoc, 32, 1},
        {"Z4/52", ArrayKind::ZCache, 4, 3},
    };

    // Grid order: workload-major, then size, then design — the print
    // loop below indexes cells as ((w * sizes) + s) * designs + d.
    SweepSpec spec;
    spec.name = "scaling_analysis";
    for (const auto& wl : workloads) {
        for (std::uint64_t bytes : sizes) {
            for (const Design& d : designs) {
                spec.add(cellParams(wl, bytes, d, instr),
                         {{"workload", JsonValue(wl)},
                          {"design", JsonValue(d.label)},
                          {"l2_mb", JsonValue(std::uint64_t{bytes >> 20})}});
            }
        }
    }

    SweepRunner runner(benchutil::sweepOptions(argc, argv, spec.name));
    std::vector<RunOutcome> outcomes = benchutil::runSweep(runner, spec);
    std::size_t failed = SweepRunner::reportFailures(spec, outcomes);
    report.addSweep(spec, outcomes);

    std::printf("capacity scaling: MPKI (and IPC) per design\n");
    std::size_t cell = 0;
    for (const auto& wl : workloads) {
        benchutil::banner(wl);
        std::printf("%8s | %18s | %18s | %18s | %9s %9s\n", "L2", "SA-4+H3",
                    "SA-32+H3", "Z4/52", "mpki adv", "ipc adv");
        for (std::uint64_t bytes : sizes) {
            const RunResult& sa4 = outcomes[cell++].result;
            const RunResult& sa32 = outcomes[cell++].result;
            const RunResult& z52 = outcomes[cell++].result;
            std::printf(
                "%6lluMB | %8.2f (%7.2f) | %8.2f (%7.2f) | %8.2f "
                "(%7.2f) | %8.2fx %8.3fx\n",
                static_cast<unsigned long long>(bytes >> 20), sa4.mpki,
                sa4.ipc, sa32.mpki, sa32.ipc, z52.mpki, z52.ipc,
                z52.mpki > 1e-9 ? sa4.mpki / z52.mpki : 1.0,
                sa32.ipc > 1e-9 ? z52.ipc / sa32.ipc : 1.0);
        }
    }
    std::printf("\nExpected shape: the Z4/52 MPKI advantage peaks where "
                "the working set straddles the cache size; its IPC edge "
                "over SA-32 holds at every size (no wide-tag hit-latency "
                "tax).\n");
    return (report.writeIfRequested() && failed == 0) ? 0 : 1;
}
