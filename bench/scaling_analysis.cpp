/**
 * @file
 * Capacity-scaling ablation (ours): where does associativity matter?
 *
 * Sweeps the shared L2 from 2 MB to 16 MB for the baseline 4-way SA,
 * the 32-way SA and the Z4/52 on capacity-sensitive workloads. The
 * expected shape: associativity's MPKI advantage is largest when the
 * working set sits *near* the cache size (replacement quality decides
 * what survives) and shrinks at both extremes — tiny caches thrash and
 * huge caches fit everything — while the zcache's advantage over
 * SA-32 in IPC persists everywhere because its hit latency never pays
 * the wide-tag tax.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "sim/experiment.hpp"

#include "bench_util.hpp"

using namespace zc;

namespace {

RunResult
runCell(const std::string& workload, std::uint64_t l2_bytes,
        ArrayKind kind, std::uint32_t ways, std::uint32_t levels,
        std::uint64_t instr)
{
    RunParams p;
    p.workload = workload;
    p.base.l2SizeBytes = l2_bytes;
    p.l2Spec.kind = kind;
    p.l2Spec.ways = ways;
    p.l2Spec.levels = levels;
    p.l2Spec.hashKind = HashKind::H3;
    p.l2Spec.policy = PolicyKind::BucketedLru;
    p.warmupInstr = instr;
    p.measureInstr = instr;
    return runExperiment(p);
}

} // namespace

int
main(int argc, char** argv)
{
    std::uint64_t instr = benchutil::flagU64(argc, argv, "instr", 100000);
    benchutil::JsonReport report(argc, argv, "scaling_analysis");
    const std::vector<std::string> workloads{"soplex", "sphinx3",
                                             "cactusADM", "gafort"};
    const std::vector<std::uint64_t> sizes{
        std::uint64_t{2} << 20, std::uint64_t{4} << 20,
        std::uint64_t{8} << 20, std::uint64_t{16} << 20};

    std::printf("capacity scaling: MPKI (and IPC) per design\n");
    for (const auto& wl : workloads) {
        benchutil::banner(wl);
        std::printf("%8s | %18s | %18s | %18s | %9s %9s\n", "L2", "SA-4+H3",
                    "SA-32+H3", "Z4/52", "mpki adv", "ipc adv");
        for (std::uint64_t bytes : sizes) {
            RunResult sa4 =
                runCell(wl, bytes, ArrayKind::SetAssoc, 4, 1, instr);
            RunResult sa32 =
                runCell(wl, bytes, ArrayKind::SetAssoc, 32, 1, instr);
            RunResult z52 =
                runCell(wl, bytes, ArrayKind::ZCache, 4, 3, instr);
            auto record = [&](const char* design, const RunResult& r) {
                report.add({{"workload", JsonValue(wl)},
                            {"design", JsonValue(design)},
                            {"l2_mb", JsonValue(std::uint64_t{bytes >> 20})}},
                           r.stats);
            };
            record("SA-4", sa4);
            record("SA-32", sa32);
            record("Z4/52", z52);
            std::printf(
                "%6lluMB | %8.2f (%7.2f) | %8.2f (%7.2f) | %8.2f "
                "(%7.2f) | %8.2fx %8.3fx\n",
                static_cast<unsigned long long>(bytes >> 20), sa4.mpki,
                sa4.ipc, sa32.mpki, sa32.ipc, z52.mpki, z52.ipc,
                z52.mpki > 1e-9 ? sa4.mpki / z52.mpki : 1.0,
                sa32.ipc > 1e-9 ? z52.ipc / sa32.ipc : 1.0);
        }
    }
    std::printf("\nExpected shape: the Z4/52 MPKI advantage peaks where "
                "the working set straddles the cache size; its IPC edge "
                "over SA-32 holds at every size (no wide-tag hit-latency "
                "tax).\n");
    return report.writeIfRequested() ? 0 : 1;
}
