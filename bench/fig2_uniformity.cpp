/**
 * @file
 * Fig. 2 — Associativity CDFs under the uniformity assumption,
 * F_A(x) = x^n for n = 4, 8, 16, 64, in linear and semi-log form,
 * validated empirically with the random-candidates cache of Section
 * IV-B (which meets the assumption by construction) under several
 * replacement policies. The (policy x n) grid runs on the sweep engine
 * (--jobs=N, docs/runner.md).
 *
 * Expected shape: every empirical column matches its analytic column to
 * sampling noise, for every policy — associativity is a property of the
 * array, independent of the ranking policy.
 */

#include <cstdio>
#include <vector>

#include "assoc/eviction_tracker.hpp"
#include "assoc/uniformity.hpp"
#include "cache/array_factory.hpp"
#include "cache/cache_model.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "runner/sweep.hpp"

#include "bench_util.hpp"

using namespace zc;

namespace {

std::vector<double>
empiricalCdf(std::uint32_t n, PolicyKind policy, std::uint64_t accesses)
{
    ArraySpec spec;
    spec.kind = ArrayKind::RandomCandidates;
    spec.blocks = 2048;
    spec.candidates = n;
    spec.policy = policy;
    CacheModel m(makeArray(spec));
    // Sampling keeps the O(blocks) rank scans cheap; the estimate is
    // unbiased (tested in test_assoc_framework).
    EvictionPriorityTracker tracker(100, /*sample_period=*/8);
    tracker.attach(m.array());
    Pcg32 rng(42);
    for (std::uint64_t i = 0; i < accesses; i++) {
        m.access(rng.next64() % 16384);
    }
    return tracker.cdf();
}

} // namespace

int
main(int argc, char** argv)
{
    std::uint64_t accesses =
        benchutil::flagU64(argc, argv, "accesses", 400000);
    benchutil::JsonReport report(argc, argv, "fig2_uniformity");
    const std::vector<std::uint32_t> ns{4, 8, 16, 64};
    const std::vector<PolicyKind> policies{PolicyKind::Lru, PolicyKind::Lfu,
                                           PolicyKind::Random};

    // Measure every (policy, n) cell up front on the sweep engine; the
    // tables below read completed results in declaration order.
    auto outcomes = runGrid<std::vector<double>>(
        policies.size() * ns.size(),
        [&](std::size_t i) {
            return empiricalCdf(ns[i % ns.size()], policies[i / ns.size()],
                                accesses);
        },
        benchutil::sweepOptions(argc, argv, "fig2_uniformity"));
    std::size_t failed =
        benchutil::reportGridFailures(outcomes, "fig2_uniformity");

    benchutil::banner("Fig. 2: analytic CDFs F_A(x) = x^n");
    std::printf("%6s", "x");
    for (auto n : ns) std::printf("  %12s", ("n=" + std::to_string(n)).c_str());
    std::printf("\n");
    for (double x : {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95,
                     1.0}) {
        std::printf("%6.2f", x);
        for (auto n : ns) std::printf("  %12.3e", uniformityCdfAt(x, n));
        std::printf("\n");
    }
    std::printf("\nPaper callout: P(evict block with e < 0.4 | n = 16) = "
                "%.1e (paper: ~1e-6)\n",
                lowPriorityEvictionProb(0.4, 16));

    benchutil::banner(
        "Fig. 2 validation: random-candidates cache, empirical CDFs");
    for (std::size_t p = 0; p < policies.size(); p++) {
        PolicyKind policy = policies[p];
        std::printf("\npolicy = %s\n", policyKindName(policy));
        std::printf("%6s", "n");
        std::printf("  %10s %10s %10s %10s   %s\n", "cdf(0.5)", "cdf(0.8)",
                    "cdf(0.9)", "mean", "KS vs x^n");
        for (std::size_t k = 0; k < ns.size(); k++) {
            std::uint32_t n = ns[k];
            const auto& outcome = outcomes[p * ns.size() + k];
            if (!outcome.ok) continue;
            const std::vector<double>& cdf = outcome.result;
            auto ideal = uniformityCdf(n, 100);
            double mean = 0.0;
            // Mean from CDF: E[X] = 1 - sum cdf * dx (right Riemann).
            for (std::size_t i = 0; i + 1 < cdf.size(); i++) {
                mean += (1.0 - cdf[i]) * 0.01;
            }
            std::printf("%6u  %10.4f %10.4f %10.4f %10.4f   %.4f\n", n,
                        cdf[49], cdf[79], cdf[89], mean,
                        ksDistance(cdf, ideal));
            if (report.enabled()) {
                JsonValue stats = JsonValue::object();
                stats.set("mean", JsonValue(mean));
                stats.set("ks_vs_uniform", JsonValue(ksDistance(cdf, ideal)));
                JsonValue c = JsonValue::array();
                for (double v : cdf) c.push(JsonValue(v));
                stats.set("cdf", std::move(c));
                report.add({{"policy",
                             JsonValue(std::string(policyKindName(policy)))},
                            {"candidates", JsonValue(n)}},
                           std::move(stats));
            }
        }
        std::printf("(uniformity means: n/(n+1) = ");
        for (auto n : ns) std::printf("%.3f ", uniformityMean(n));
        std::printf(")\n");
    }
    std::printf("\nExpected shape: empirical columns track x^n for every "
                "policy; KS < ~0.02.\n");
    return (report.writeIfRequested() && failed == 0) ? 0 : 1;
}
