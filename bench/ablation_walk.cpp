/**
 * @file
 * Ablation — zcache walk strategy (Section III-D design choices).
 *
 * Compares, on a capacity-pressured stream, the walk variants the paper
 * discusses: BFS (hardware default), DFS (cuckoo-style), hybrid
 * BFS+DFS, early-stopped walks of several candidate budgets, and the
 * Bloom repeat filter. Reports candidates, relocations (the data-array
 * energy driver), mean eviction priority (associativity quality) and
 * miss rate.
 *
 * Expected shape:
 *  - BFS and DFS reach similar candidate counts, but DFS needs far
 *    more relocations per replacement (L = R/W vs < L_BFS): the
 *    paper's argument for BFS in hardware;
 *  - hybrid roughly doubles candidates with no extra walk-table state;
 *  - early stop degrades mean eviction priority gracefully;
 *  - the Bloom filter matters only when repeats are common (small
 *    arrays).
 */

#include <cstdio>
#include <string>
#include <vector>

#include "assoc/eviction_tracker.hpp"
#include "cache/cache_model.hpp"
#include "cache/z_array.hpp"
#include "common/stats_registry.hpp"
#include "replacement/bucketed_lru.hpp"
#include "trace/generator.hpp"

#include "bench_util.hpp"

using namespace zc;

namespace {

struct Variant
{
    std::string label;
    ZArrayConfig cfg;
};

void
runVariant(const Variant& v, std::uint32_t blocks, std::uint64_t accesses,
           benchutil::JsonReport& report)
{
    auto policy = std::make_unique<BucketedLruPolicy>(blocks);
    CacheModel m(std::make_unique<ZArray>(blocks, v.cfg, std::move(policy)));
    auto& z = dynamic_cast<ZArray&>(m.array());
    EvictionPriorityTracker tracker(100, 16);
    tracker.attach(m.array());

    ZipfGenerator gen(0, blocks * 8, 0.8, 99);
    for (std::uint64_t i = 0; i < accesses; i++) {
        m.access(gen.next().lineAddr);
    }

    const ZWalkStats& ws = z.walkStats();
    std::printf("%-24s %9.2f %9.3f %9.0f %10.4f %9.3f\n", v.label.c_str(),
                ws.avgCandidates(), ws.avgRelocations(),
                static_cast<double>(ws.repeatsTotal),
                tracker.histogram().mean(), m.stats().missRate());
    if (report.enabled()) {
        StatsRegistry reg;
        StatGroup& sum = reg.root().group("summary", "headline metrics");
        sum.addConst("accesses", "model accesses",
                     JsonValue(m.stats().accesses));
        sum.addConst("miss_rate", "model miss rate",
                     JsonValue(m.stats().missRate()));
        sum.addConst("mean_eviction_priority", "Section IV quality metric",
                     JsonValue(tracker.histogram().mean()));
        z.registerStats(reg.root().group("array", "zcache array"));
        report.add({{"variant", JsonValue(v.label)},
                    {"blocks", JsonValue(blocks)}},
                   reg.toJson());
    }
}

} // namespace

int
main(int argc, char** argv)
{
    std::uint32_t blocks = static_cast<std::uint32_t>(
        benchutil::flagU64(argc, argv, "blocks", 16384));
    std::uint64_t accesses =
        benchutil::flagU64(argc, argv, "accesses", 600000);
    benchutil::JsonReport report(argc, argv, "ablation_walk");

    auto base = [](WalkStrategy s, std::uint32_t levels,
                   std::uint32_t cap = 0, bool bloom = false) {
        ZArrayConfig c;
        c.ways = 4;
        c.levels = levels;
        c.strategy = s;
        c.maxCandidates = cap;
        c.bloomRepeatFilter = bloom;
        return c;
    };

    std::vector<Variant> variants{
        {"BFS L=1 (skew)", base(WalkStrategy::Bfs, 1)},
        {"BFS L=2 (Z4/16)", base(WalkStrategy::Bfs, 2)},
        {"BFS L=3 (Z4/52)", base(WalkStrategy::Bfs, 3)},
        {"DFS R=16", base(WalkStrategy::Dfs, 2)},
        {"DFS R=52", base(WalkStrategy::Dfs, 3)},
        {"Hybrid L=2", base(WalkStrategy::Hybrid, 2)},
        {"BFS L=3 cap=32", base(WalkStrategy::Bfs, 3, 32)},
        {"BFS L=3 cap=24", base(WalkStrategy::Bfs, 3, 24)},
        {"BFS L=3 cap=12", base(WalkStrategy::Bfs, 3, 12)},
        {"BFS L=3 +bloom", base(WalkStrategy::Bfs, 3, 0, true)},
    };

    benchutil::banner("walk-strategy ablation (Zipf 0.8, 8x footprint)");
    std::printf("%-24s %9s %9s %9s %10s %9s\n", "variant", "avgCands",
                "avgReloc", "repeats", "mean-e", "missrate");
    for (const auto& v : variants) runVariant(v, blocks, accesses, report);

    benchutil::banner("small-array repeats (Bloom filter regime)");
    std::printf("%-24s %9s %9s %9s %10s %9s\n", "variant", "avgCands",
                "avgReloc", "repeats", "mean-e", "missrate");
    std::vector<Variant> small{
        {"BFS L=3 64-block", base(WalkStrategy::Bfs, 3)},
        {"BFS L=3 +bloom", base(WalkStrategy::Bfs, 3, 0, true)},
    };
    for (const auto& v : small) runVariant(v, 64, accesses / 8, report);

    std::printf("\nExpected shape: DFS relocations >> BFS at equal R; "
                "hybrid candidates ~2x BFS L=2; mean-e falls smoothly as "
                "the cap shrinks.\n");
    return report.writeIfRequested() ? 0 : 1;
}
