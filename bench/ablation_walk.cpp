/**
 * @file
 * Ablation — zcache walk strategy (Section III-D design choices).
 *
 * Compares, on a capacity-pressured stream, the walk variants the paper
 * discusses: BFS (hardware default), DFS (cuckoo-style), hybrid
 * BFS+DFS, early-stopped walks of several candidate budgets, and the
 * Bloom repeat filter. Reports candidates, relocations (the data-array
 * energy driver), mean eviction priority (associativity quality) and
 * miss rate. Variants run concurrently on the sweep engine (--jobs=N,
 * docs/runner.md); each owns its array, policy and generator.
 *
 * Expected shape:
 *  - BFS and DFS reach similar candidate counts, but DFS needs far
 *    more relocations per replacement (L = R/W vs < L_BFS): the
 *    paper's argument for BFS in hardware;
 *  - hybrid roughly doubles candidates with no extra walk-table state;
 *  - early stop degrades mean eviction priority gracefully;
 *  - the Bloom filter matters only when repeats are common (small
 *    arrays).
 */

#include <cstdio>
#include <string>
#include <vector>

#include "assoc/eviction_tracker.hpp"
#include "cache/cache_model.hpp"
#include "cache/z_array.hpp"
#include "common/stats_registry.hpp"
#include "replacement/bucketed_lru.hpp"
#include "runner/sweep.hpp"
#include "trace/generator.hpp"

#include "bench_util.hpp"

using namespace zc;

namespace {

struct Variant
{
    std::string label;
    ZArrayConfig cfg;
    std::uint32_t blocks = 0;   ///< grid point's array size
    std::uint64_t accesses = 0; ///< grid point's stream length
};

/** One completed variant: the printed row plus its stats tree. */
struct VariantRow
{
    double avgCandidates = 0.0;
    double avgRelocations = 0.0;
    double repeats = 0.0;
    double meanEvictionPriority = 0.0;
    double missRate = 0.0;
    JsonValue stats;
};

VariantRow
runVariant(const Variant& v, bool want_stats)
{
    auto policy = std::make_unique<BucketedLruPolicy>(v.blocks);
    CacheModel m(
        std::make_unique<ZArray>(v.blocks, v.cfg, std::move(policy)));
    auto& z = dynamic_cast<ZArray&>(m.array());
    EvictionPriorityTracker tracker(100, 16);
    tracker.attach(m.array());

    ZipfGenerator gen(0, v.blocks * 8, 0.8, 99);
    for (std::uint64_t i = 0; i < v.accesses; i++) {
        m.access(gen.next().lineAddr);
    }

    const ZWalkStats& ws = z.walkStats();
    VariantRow row;
    row.avgCandidates = ws.avgCandidates();
    row.avgRelocations = ws.avgRelocations();
    row.repeats = static_cast<double>(ws.repeatsTotal);
    row.meanEvictionPriority = tracker.histogram().mean();
    row.missRate = m.stats().missRate();
    if (want_stats) {
        StatsRegistry reg;
        StatGroup& sum = reg.root().group("summary", "headline metrics");
        sum.addConst("accesses", "model accesses",
                     JsonValue(m.stats().accesses));
        sum.addConst("miss_rate", "model miss rate",
                     JsonValue(m.stats().missRate()));
        sum.addConst("mean_eviction_priority", "Section IV quality metric",
                     JsonValue(tracker.histogram().mean()));
        z.registerStats(reg.root().group("array", "zcache array"));
        row.stats = reg.toJson();
    }
    return row;
}

void
printRow(const Variant& v, const VariantRow& r)
{
    std::printf("%-24s %9.2f %9.3f %9.0f %10.4f %9.3f\n", v.label.c_str(),
                r.avgCandidates, r.avgRelocations, r.repeats,
                r.meanEvictionPriority, r.missRate);
}

} // namespace

int
main(int argc, char** argv)
{
    std::uint32_t blocks = static_cast<std::uint32_t>(
        benchutil::flagU64(argc, argv, "blocks", 16384));
    std::uint64_t accesses =
        benchutil::flagU64(argc, argv, "accesses", 600000);
    benchutil::JsonReport report(argc, argv, "ablation_walk");

    auto base = [](WalkStrategy s, std::uint32_t levels,
                   std::uint32_t cap = 0, bool bloom = false) {
        ZArrayConfig c;
        c.ways = 4;
        c.levels = levels;
        c.strategy = s;
        c.maxCandidates = cap;
        c.bloomRepeatFilter = bloom;
        return c;
    };

    std::vector<Variant> variants{
        {"BFS L=1 (skew)", base(WalkStrategy::Bfs, 1), 0, 0},
        {"BFS L=2 (Z4/16)", base(WalkStrategy::Bfs, 2), 0, 0},
        {"BFS L=3 (Z4/52)", base(WalkStrategy::Bfs, 3), 0, 0},
        {"DFS R=16", base(WalkStrategy::Dfs, 2), 0, 0},
        {"DFS R=52", base(WalkStrategy::Dfs, 3), 0, 0},
        {"Hybrid L=2", base(WalkStrategy::Hybrid, 2), 0, 0},
        {"BFS L=3 cap=32", base(WalkStrategy::Bfs, 3, 32), 0, 0},
        {"BFS L=3 cap=24", base(WalkStrategy::Bfs, 3, 24), 0, 0},
        {"BFS L=3 cap=12", base(WalkStrategy::Bfs, 3, 12), 0, 0},
        {"BFS L=3 +bloom", base(WalkStrategy::Bfs, 3, 0, true), 0, 0},
    };
    for (auto& v : variants) {
        v.blocks = blocks;
        v.accesses = accesses;
    }

    // The small-array regime (Bloom-filter territory) rides in the same
    // grid with its own geometry.
    std::vector<Variant> small{
        {"BFS L=3 64-block", base(WalkStrategy::Bfs, 3), 64, accesses / 8},
        {"BFS L=3 +bloom", base(WalkStrategy::Bfs, 3, 0, true), 64,
         accesses / 8},
    };

    std::vector<Variant> grid = variants;
    grid.insert(grid.end(), small.begin(), small.end());

    auto outcomes = runGrid<VariantRow>(
        grid.size(),
        [&](std::size_t i) { return runVariant(grid[i], report.enabled()); },
        benchutil::sweepOptions(argc, argv, "ablation_walk"));
    std::size_t failed =
        benchutil::reportGridFailures(outcomes, "ablation_walk");
    for (std::size_t i = 0; i < grid.size(); i++) {
        if (!outcomes[i].ok) continue;
        report.add({{"variant", JsonValue(grid[i].label)},
                    {"blocks", JsonValue(grid[i].blocks)}},
                   std::move(outcomes[i].result.stats));
    }

    benchutil::banner("walk-strategy ablation (Zipf 0.8, 8x footprint)");
    std::printf("%-24s %9s %9s %9s %10s %9s\n", "variant", "avgCands",
                "avgReloc", "repeats", "mean-e", "missrate");
    for (std::size_t i = 0; i < variants.size(); i++) {
        printRow(grid[i], outcomes[i].result);
    }

    benchutil::banner("small-array repeats (Bloom filter regime)");
    std::printf("%-24s %9s %9s %9s %10s %9s\n", "variant", "avgCands",
                "avgReloc", "repeats", "mean-e", "missrate");
    for (std::size_t i = variants.size(); i < grid.size(); i++) {
        printRow(grid[i], outcomes[i].result);
    }

    std::printf("\nExpected shape: DFS relocations >> BFS at equal R; "
                "hybrid candidates ~2x BFS L=2; mean-e falls smoothly as "
                "the cap shrinks.\n");
    return (report.writeIfRequested() && failed == 0) ? 0 : 1;
}
