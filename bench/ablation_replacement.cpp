/**
 * @file
 * Ablation — replacement policies on the zcache (Section III-E).
 *
 * Part 1 sweeps the bucketed-LRU design space (timestamp width n,
 * counter period k) against full 64-bit LRU: the paper's claim is that
 * 8-bit timestamps bumped every ~5% of the cache size lose essentially
 * nothing.
 *
 * Part 2 compares the set-ordering-free policies the paper cites as
 * natural zcache fits (bucketed LRU, NRU, SRRIP, LFU, random, OPT) on
 * Z4/16 and Z4/52.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "cache/array_factory.hpp"
#include "cache/cache_model.hpp"
#include "cache/z_array.hpp"
#include "common/stats_registry.hpp"
#include "replacement/bucketed_lru.hpp"
#include "replacement/lru.hpp"
#include "trace/future_use.hpp"
#include "trace/generator.hpp"

#include "bench_util.hpp"

using namespace zc;

namespace {

double
missRateWithPolicy(std::unique_ptr<ReplacementPolicy> policy,
                   std::uint32_t blocks, std::uint32_t levels,
                   std::uint64_t accesses, bool opt_annotate,
                   benchutil::JsonReport& report, const std::string& label)
{
    ZArrayConfig cfg;
    cfg.ways = 4;
    cfg.levels = levels;
    CacheModel m(
        std::make_unique<ZArray>(blocks, cfg, std::move(policy)));

    ZipfGenerator gen(0, blocks * 6, 0.9, 123);
    if (!opt_annotate) {
        for (std::uint64_t i = 0; i < accesses; i++) {
            m.access(gen.next().lineAddr);
        }
    } else {
        auto trace = recordTrace(gen, accesses);
        FutureUseAnnotator::annotate(trace);
        for (const MemRecord& r : trace) {
            AccessContext c;
            c.lineAddr = r.lineAddr;
            c.nextUse = r.nextUse;
            m.access(r.lineAddr, c);
        }
    }
    if (report.enabled()) {
        StatsRegistry reg;
        StatGroup& sum = reg.root().group("summary", "headline metrics");
        sum.addConst("accesses", "model accesses",
                     JsonValue(m.stats().accesses));
        sum.addConst("miss_rate", "model miss rate",
                     JsonValue(m.stats().missRate()));
        m.array().registerStats(reg.root().group("array", "zcache array"));
        report.add({{"policy", JsonValue(label)},
                    {"levels", JsonValue(levels)}},
                   reg.toJson());
    }
    return m.stats().missRate();
}

} // namespace

int
main(int argc, char** argv)
{
    std::uint32_t blocks = static_cast<std::uint32_t>(
        benchutil::flagU64(argc, argv, "blocks", 16384));
    std::uint64_t accesses =
        benchutil::flagU64(argc, argv, "accesses", 1500000);
    benchutil::JsonReport report(argc, argv, "ablation_replacement");

    benchutil::banner("bucketed-LRU design space on Z4/16 (vs full LRU)");
    double full = missRateWithPolicy(std::make_unique<LruPolicy>(blocks),
                                     blocks, 2, accesses, false, report,
                                     "full-lru");
    std::printf("%-28s missrate %.4f (reference)\n", "full 64-bit LRU",
                full);
    struct BLru
    {
        std::uint32_t bits;
        std::uint64_t k; // 0 = paper default (5% of blocks)
    };
    for (const BLru& b : std::vector<BLru>{{8, 0},
                                           {8, 1},
                                           {8, 4096},
                                           {6, 0},
                                           {4, 0},
                                           {2, 0}}) {
        std::string label = "bucketed n=" + std::to_string(b.bits) + " k=" +
                            (b.k ? std::to_string(b.k) : std::string("5%"));
        double mr = missRateWithPolicy(
            std::make_unique<BucketedLruPolicy>(blocks, b.bits, b.k),
            blocks, 2, accesses, false, report, label);
        std::printf("%-28s missrate %.4f (+%.2f%%)\n", label.c_str(), mr,
                    100.0 * (mr - full) / full);
    }

    benchutil::banner("policy comparison on Z4/16 and Z4/52");
    std::printf("%-14s %12s %12s\n", "policy", "Z4/16", "Z4/52");
    for (PolicyKind kind :
         {PolicyKind::Random, PolicyKind::Nru, PolicyKind::Lfu,
          PolicyKind::Srrip, PolicyKind::Bip, PolicyKind::BucketedLru,
          PolicyKind::Lru, PolicyKind::Opt}) {
        double m2 = missRateWithPolicy(makePolicy(kind, blocks, 5), blocks,
                                       2, accesses,
                                       kind == PolicyKind::Opt, report,
                                       policyKindName(kind));
        double m3 = missRateWithPolicy(makePolicy(kind, blocks, 5), blocks,
                                       3, accesses,
                                       kind == PolicyKind::Opt, report,
                                       policyKindName(kind));
        std::printf("%-14s %12.4f %12.4f\n", policyKindName(kind), m2, m3);
    }

    std::printf("\nExpected shape: 8-bit/5%% bucketed LRU within noise of "
                "full LRU; OPT lowest; random highest; higher R helps "
                "every policy.\n");
    return report.writeIfRequested() ? 0 : 1;
}
