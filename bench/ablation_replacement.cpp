/**
 * @file
 * Ablation — replacement policies on the zcache (Section III-E).
 *
 * Part 1 sweeps the bucketed-LRU design space (timestamp width n,
 * counter period k) against full 64-bit LRU: the paper's claim is that
 * 8-bit timestamps bumped every ~5% of the cache size lose essentially
 * nothing.
 *
 * Part 2 compares the set-ordering-free policies the paper cites as
 * natural zcache fits (bucketed LRU, NRU, SRRIP, LFU, random, OPT) on
 * Z4/16 and Z4/52.
 *
 * All configurations form one grid on the sweep engine (--jobs=N,
 * docs/runner.md); each point builds its own array, policy, generator
 * and (for OPT) annotated trace.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "cache/array_factory.hpp"
#include "cache/cache_model.hpp"
#include "cache/z_array.hpp"
#include "common/stats_registry.hpp"
#include "replacement/bucketed_lru.hpp"
#include "replacement/lru.hpp"
#include "runner/sweep.hpp"
#include "trace/future_use.hpp"
#include "trace/generator.hpp"

#include "bench_util.hpp"

using namespace zc;

namespace {

/** One grid point: a policy on a Z4/{16,52} under the Zipf stream. */
struct Cell
{
    std::string label;   ///< report tag ("full-lru", "bucketed n=8 ...")
    PolicyKind kind = PolicyKind::Lru;
    bool bucketed = false;
    std::uint32_t bucketBits = 0;
    std::uint64_t bucketK = 0;
    std::uint32_t levels = 2;
    bool optAnnotate = false;
};

struct CellResult
{
    double missRate = 0.0;
    JsonValue stats;
};

std::unique_ptr<ReplacementPolicy>
makeCellPolicy(const Cell& c, std::uint32_t blocks)
{
    if (c.bucketed) {
        return std::make_unique<BucketedLruPolicy>(blocks, c.bucketBits,
                                                   c.bucketK);
    }
    if (c.kind == PolicyKind::Lru && c.label == "full-lru") {
        return std::make_unique<LruPolicy>(blocks);
    }
    return makePolicy(c.kind, blocks, 5);
}

CellResult
runCell(const Cell& c, std::uint32_t blocks, std::uint64_t accesses,
        bool want_stats)
{
    ZArrayConfig cfg;
    cfg.ways = 4;
    cfg.levels = c.levels;
    CacheModel m(std::make_unique<ZArray>(blocks, cfg,
                                          makeCellPolicy(c, blocks)));

    ZipfGenerator gen(0, blocks * 6, 0.9, 123);
    if (!c.optAnnotate) {
        for (std::uint64_t i = 0; i < accesses; i++) {
            m.access(gen.next().lineAddr);
        }
    } else {
        auto trace = recordTrace(gen, accesses);
        FutureUseAnnotator::annotate(trace);
        for (const MemRecord& r : trace) {
            AccessContext ctx;
            ctx.lineAddr = r.lineAddr;
            ctx.nextUse = r.nextUse;
            m.access(r.lineAddr, ctx);
        }
    }

    CellResult res;
    res.missRate = m.stats().missRate();
    if (want_stats) {
        StatsRegistry reg;
        StatGroup& sum = reg.root().group("summary", "headline metrics");
        sum.addConst("accesses", "model accesses",
                     JsonValue(m.stats().accesses));
        sum.addConst("miss_rate", "model miss rate",
                     JsonValue(m.stats().missRate()));
        m.array().registerStats(reg.root().group("array", "zcache array"));
        res.stats = reg.toJson();
    }
    return res;
}

} // namespace

int
main(int argc, char** argv)
{
    std::uint32_t blocks = static_cast<std::uint32_t>(
        benchutil::flagU64(argc, argv, "blocks", 16384));
    std::uint64_t accesses =
        benchutil::flagU64(argc, argv, "accesses", 1500000);
    benchutil::JsonReport report(argc, argv, "ablation_replacement");

    // Grid: full LRU reference, the bucketed design space, then the
    // policy comparison on both zcache depths.
    std::vector<Cell> grid;
    {
        Cell full;
        full.label = "full-lru";
        full.kind = PolicyKind::Lru;
        full.levels = 2;
        grid.push_back(full);
    }
    struct BLru
    {
        std::uint32_t bits;
        std::uint64_t k; // 0 = paper default (5% of blocks)
    };
    const std::vector<BLru> blrus{{8, 0}, {8, 1}, {8, 4096},
                                  {6, 0}, {4, 0}, {2, 0}};
    for (const BLru& b : blrus) {
        Cell c;
        c.label = "bucketed n=" + std::to_string(b.bits) + " k=" +
                  (b.k ? std::to_string(b.k) : std::string("5%"));
        c.bucketed = true;
        c.bucketBits = b.bits;
        c.bucketK = b.k;
        c.levels = 2;
        grid.push_back(c);
    }
    const std::vector<PolicyKind> kinds{
        PolicyKind::Random, PolicyKind::Nru,         PolicyKind::Lfu,
        PolicyKind::Srrip,  PolicyKind::Bip,         PolicyKind::BucketedLru,
        PolicyKind::Lru,    PolicyKind::Opt};
    std::size_t compare_begin = grid.size();
    for (PolicyKind kind : kinds) {
        for (std::uint32_t levels : {2u, 3u}) {
            Cell c;
            c.label = policyKindName(kind);
            c.kind = kind;
            c.levels = levels;
            c.optAnnotate = kind == PolicyKind::Opt;
            grid.push_back(c);
        }
    }

    auto outcomes = runGrid<CellResult>(
        grid.size(),
        [&](std::size_t i) {
            return runCell(grid[i], blocks, accesses, report.enabled());
        },
        benchutil::sweepOptions(argc, argv, "ablation_replacement"));
    std::size_t failed =
        benchutil::reportGridFailures(outcomes, "ablation_replacement");
    for (std::size_t i = 0; i < grid.size(); i++) {
        if (!outcomes[i].ok) continue;
        report.add({{"policy", JsonValue(grid[i].label)},
                    {"levels", JsonValue(grid[i].levels)}},
                   std::move(outcomes[i].result.stats));
    }

    benchutil::banner("bucketed-LRU design space on Z4/16 (vs full LRU)");
    double full = outcomes[0].result.missRate;
    std::printf("%-28s missrate %.4f (reference)\n", "full 64-bit LRU",
                full);
    for (std::size_t i = 1; i < compare_begin; i++) {
        double mr = outcomes[i].result.missRate;
        std::printf("%-28s missrate %.4f (+%.2f%%)\n",
                    grid[i].label.c_str(), mr,
                    100.0 * (mr - full) / full);
    }

    benchutil::banner("policy comparison on Z4/16 and Z4/52");
    std::printf("%-14s %12s %12s\n", "policy", "Z4/16", "Z4/52");
    for (std::size_t k = 0; k < kinds.size(); k++) {
        double m2 = outcomes[compare_begin + 2 * k].result.missRate;
        double m3 = outcomes[compare_begin + 2 * k + 1].result.missRate;
        std::printf("%-14s %12.4f %12.4f\n", policyKindName(kinds[k]), m2,
                    m3);
    }

    std::printf("\nExpected shape: 8-bit/5%% bucketed LRU within noise of "
                "full LRU; OPT lowest; random highest; higher R helps "
                "every policy.\n");
    return (report.writeIfRequested() && failed == 0) ? 0 : 1;
}
