/**
 * @file
 * google-benchmark microbenchmarks of the simulator's hot paths: array
 * lookups and miss-path insertions for each design, and the zcache walk
 * at several depths. These quantify *simulation* throughput (how fast
 * the models run on the host), not modeled hardware latency — useful
 * when sizing bench sweeps.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "cache/array_factory.hpp"
#include "cache/cache_model.hpp"
#include "common/rng.hpp"
#include "compress/codec.hpp"
#include "obs/tracer.hpp"
#include "store/loadgen.hpp"
#include "store/zkv.hpp"
#include "trace/generator.hpp"

namespace zc {
namespace {

/**
 * Artificial slowdown factor for the CI perf gate's failure drill
 * (--inject-slowdown=F): the pinned profile performs F accesses per
 * counted item, so reported items/sec drops ~F×. F=1 (default) is the
 * real measurement. See scripts/perf_gate.py and docs/performance.md.
 */
int g_inject_slowdown = 1;

CacheModel
modelFor(ArrayKind kind, std::uint32_t ways, std::uint32_t levels,
         PolicyKind policy = PolicyKind::BucketedLru)
{
    ArraySpec spec;
    spec.kind = kind;
    spec.blocks = 16384;
    spec.ways = ways;
    spec.levels = levels;
    spec.policy = policy;
    return CacheModel(makeArray(spec));
}

void
runMix(benchmark::State& state, CacheModel& m, std::uint64_t footprint)
{
    Pcg32 rng(1);
    // Warm the array.
    for (int i = 0; i < 60000; i++) m.access(rng.next64() % footprint);
    for (auto _ : state) {
        benchmark::DoNotOptimize(m.access(rng.next64() % footprint));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void
BM_SetAssocAccess(benchmark::State& state)
{
    auto m = modelFor(ArrayKind::SetAssoc,
                      static_cast<std::uint32_t>(state.range(0)), 1);
    runMix(state, m, 65536);
}
BENCHMARK(BM_SetAssocAccess)->Arg(4)->Arg(16)->Arg(32);

void
BM_ZCacheAccess(benchmark::State& state)
{
    auto m = modelFor(ArrayKind::ZCache, 4,
                      static_cast<std::uint32_t>(state.range(0)));
    runMix(state, m, 65536);
}
BENCHMARK(BM_ZCacheAccess)->Arg(1)->Arg(2)->Arg(3);

void
BM_ZCacheHitOnly(benchmark::State& state)
{
    auto m = modelFor(ArrayKind::ZCache, 4,
                      static_cast<std::uint32_t>(state.range(0)));
    Pcg32 rng(2);
    for (int i = 0; i < 60000; i++) m.access(rng.next64() % 8192);
    // Footprint half the cache: ~all hits.
    for (auto _ : state) {
        benchmark::DoNotOptimize(m.access(rng.next64() % 8192));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ZCacheHitOnly)->Arg(2)->Arg(3);

/**
 * The pinned walk-heavy profile behind the CI perf-regression gate
 * (docs/performance.md): Z 4/52 (4 ways, 3 levels) under SRRIP with a
 * footprint 4× the array, so ~75% of accesses miss and replacement
 * walks dominate — the configuration that exercises the walk dedup and
 * batched hashing hardest. Keep the parameters FROZEN: the committed
 * baseline in results/reference/perf_baseline.json is only comparable
 * to runs of this exact profile.
 */
void
BM_WalkHeavyPinned(benchmark::State& state)
{
    auto m = modelFor(ArrayKind::ZCache, 4, 3, PolicyKind::Srrip);
    Pcg32 rng(42);
    const std::uint64_t footprint = 65536;
    for (int i = 0; i < 120000; i++) m.access(rng.next64() % footprint);
    for (auto _ : state) {
        for (int r = 0; r < g_inject_slowdown; r++) {
            benchmark::DoNotOptimize(m.access(rng.next64() % footprint));
        }
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_WalkHeavyPinned);

void
BM_FullyAssocAccess(benchmark::State& state)
{
    auto m = modelFor(ArrayKind::FullyAssoc, 1, 1);
    runMix(state, m, 65536);
}
BENCHMARK(BM_FullyAssocAccess);

/**
 * Single-threaded zkv get/put mix (70/30) against a 4-shard zcache
 * store with a footprint 2x capacity — the store-throughput row the
 * perf gate can pin once it has CI history (docs/store.md).
 */
void
BM_StoreGetPut(benchmark::State& state)
{
    ZkvConfig cfg;
    cfg.shards = 4;
    cfg.array.blocks = 4096;
    auto store = ZkvStore::create(cfg);
    zc_assert(store.hasValue());
    ZkvStore& kv = **store;
    Pcg32 rng(7);
    const std::uint64_t footprint = 32768;
    for (int i = 0; i < 60000; i++) {
        std::uint64_t key = rng.next64() % footprint;
        (void)kv.put(key, key);
    }
    for (auto _ : state) {
        std::uint64_t key = rng.next64() % footprint;
        if (rng.uniform() < 0.7) {
            benchmark::DoNotOptimize(kv.get(key));
        } else {
            benchmark::DoNotOptimize(kv.put(key, key));
        }
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_StoreGetPut);

/**
 * BM_StoreGetPut's mix turned read-heavy (95/5) on the optimistic
 * seqlock read path (docs/store.md, "Read path"). Single-threaded, so
 * every optimistic get validates on its first attempt: the exported
 * get_optimistic counter is the fraction of gets answered lock-free
 * and must sit at 1.0 here — scripts/perf_gate.py renders it next to
 * the throughput verdict, so a drop (gets falling back to the locked
 * path) is visible in CI even before it costs throughput.
 */
void
BM_StoreGetOptimistic(benchmark::State& state)
{
    ZkvConfig cfg;
    cfg.shards = 4;
    cfg.array.blocks = 4096;
    cfg.readPath = ReadPath::Optimistic;
    auto store = ZkvStore::create(cfg);
    zc_assert(store.hasValue());
    ZkvStore& kv = **store;
    Pcg32 rng(7);
    const std::uint64_t footprint = 32768;
    for (int i = 0; i < 60000; i++) {
        std::uint64_t key = rng.next64() % footprint;
        (void)kv.put(key, key);
    }
    for (auto _ : state) {
        std::uint64_t key = rng.next64() % footprint;
        if (rng.uniform() < 0.95) {
            benchmark::DoNotOptimize(kv.get(key));
        } else {
            benchmark::DoNotOptimize(kv.put(key, key));
        }
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
    const ZkvShardStats tot = kv.totals();
    const ZkvShardObs obs = kv.obsTotals();
    const double gets = tot.gets > 0 ? static_cast<double>(tot.gets) : 1.0;
    state.counters["get_optimistic"] =
        benchmark::Counter(static_cast<double>(obs.getOptimistic) / gets);
    state.counters["get_fallback"] =
        benchmark::Counter(static_cast<double>(obs.getFallback) / gets);
}
BENCHMARK(BM_StoreGetOptimistic);

/**
 * BM_StoreGetPut with live telemetry on: instrumented op paths plus
 * one trace record per op into a per-thread ring drained by the
 * collector (count-only mode — no file I/O, so this measures the
 * instrumentation itself). The tracing-on overhead vs BM_StoreGetPut
 * is recorded in docs/performance.md with a <5% budget
 * (docs/telemetry.md); the disabled path costs one predicted branch
 * and stays inside BM_StoreGetPut's own noise.
 */
void
BM_StoreGetPutTraced(benchmark::State& state)
{
    ZkvConfig cfg;
    cfg.shards = 4;
    cfg.array.blocks = 4096;
    auto store = ZkvStore::create(cfg);
    zc_assert(store.hasValue());
    ZkvStore& kv = **store;
    ObsTracerConfig tc; // empty path: count-only, no trace file
    ObsTracer tracer(std::move(tc));
    kv.enableObs(&tracer);
    Pcg32 rng(7);
    const std::uint64_t footprint = 32768;
    for (int i = 0; i < 60000; i++) {
        std::uint64_t key = rng.next64() % footprint;
        (void)kv.put(key, key);
    }
    for (auto _ : state) {
        std::uint64_t key = rng.next64() % footprint;
        if (rng.uniform() < 0.7) {
            benchmark::DoNotOptimize(kv.get(key));
        } else {
            benchmark::DoNotOptimize(kv.put(key, key));
        }
    }
    kv.disableObs();
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_StoreGetPutTraced);

/**
 * One BDI compress of a 64 B line, cycling through the ContentModel's
 * class mix (docs/compression.md) so the measurement covers the zero /
 * repeat / delta fast paths and the raw fallback in their modeled
 * proportions. The exported ratio counter is raw/stored bytes over the
 * whole run — scripts/perf_gate.py renders it next to the throughput
 * verdict once this row has CI history.
 */
void
BM_CodecCompress(benchmark::State& state)
{
    auto codec = makeCodec(CodecKind::Bdi);
    ContentModel content;
    constexpr std::size_t kLine = 64;
    constexpr std::size_t kLines = 1024;
    std::vector<std::uint8_t> src(kLines * kLine);
    for (std::size_t i = 0; i < kLines; i++) {
        content.fill(static_cast<Addr>(i), src.data() + i * kLine, kLine);
    }
    std::vector<std::uint8_t> dst(codec->maxCompressedSize(kLine));
    std::uint64_t raw = 0, stored = 0, i = 0;
    for (auto _ : state) {
        const std::uint8_t* line = src.data() + (i++ % kLines) * kLine;
        auto n = codec->compress(line, kLine, dst.data(), dst.size());
        benchmark::DoNotOptimize(n);
        raw += kLine;
        stored += *n;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
    state.counters["compression_ratio"] = benchmark::Counter(
        stored > 0 ? static_cast<double>(raw) / static_cast<double>(stored)
                   : 1.0);
}
BENCHMARK(BM_CodecCompress);

/**
 * BM_StoreGetPut with the store in compressed bytes mode (BDI values,
 * docs/compression.md): the same 70/30 mix, but puts build a loadgen
 * payload and run it through the codec, and get hits decompress. The
 * delta vs BM_StoreGetPut is the compressed tier's op-path cost; the
 * ratio counter must sit above 1.0 on the loadgen payload mix.
 */
void
BM_StoreGetPutCompressed(benchmark::State& state)
{
    ZkvConfig cfg;
    cfg.shards = 4;
    cfg.array.blocks = 4096;
    cfg.value.maxBytes = kZkvMaxValueBytes;
    cfg.value.codec = CodecKind::Bdi;
    auto store = ZkvStore::create(cfg);
    zc_assert(store.hasValue());
    ZkvStore& kv = **store;
    Pcg32 rng(7);
    const std::uint64_t footprint = 32768;
    const std::uint32_t vb_min = 16, vb_max = 64;
    std::vector<std::uint8_t> payload;
    auto putOne = [&](std::uint64_t key) {
        zkvFillPayload(key, 0, zkvPayloadLen(key, vb_min, vb_max), payload);
        return kv.putBytes(key, payload);
    };
    for (int i = 0; i < 60000; i++) {
        (void)putOne(rng.next64() % footprint);
    }
    for (auto _ : state) {
        std::uint64_t key = rng.next64() % footprint;
        if (rng.uniform() < 0.7) {
            benchmark::DoNotOptimize(kv.getBytes(key));
        } else {
            benchmark::DoNotOptimize(putOne(key));
        }
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
    const ZkvCompressionStats cp = kv.compressionTotals();
    state.counters["compression_ratio"] = benchmark::Counter(
        cp.storedBytesTotal > 0
            ? static_cast<double>(cp.rawBytesTotal) /
                  static_cast<double>(cp.storedBytesTotal)
            : 1.0);
}
BENCHMARK(BM_StoreGetPutCompressed);

void
BM_ZipfGenerator(benchmark::State& state)
{
    ZipfGenerator gen(0, 100000, 1.0, 3);
    for (auto _ : state) {
        benchmark::DoNotOptimize(gen.next().lineAddr);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ZipfGenerator);

} // namespace
} // namespace zc

/**
 * Custom main so this binary honours the suite-wide flags: --json=<path>
 * is translated into google-benchmark's own JSON reporter flags
 * (--benchmark_out / --benchmark_out_format) before initialization, and
 * the sweep-engine flags (--jobs=N, --no-progress) are stripped —
 * google-benchmark times single-threaded hot loops, so there is nothing
 * for a thread pool to do here.
 */
int
main(int argc, char** argv)
{
    std::vector<char*> args(argv, argv + argc);
    std::string out_flag, fmt_flag;
    for (auto it = args.begin(); it != args.end();) {
        constexpr const char* kJson = "--json=";
        constexpr const char* kJobs = "--jobs=";
        constexpr const char* kSlow = "--inject-slowdown=";
        if (std::strncmp(*it, kJson, std::strlen(kJson)) == 0) {
            out_flag = std::string("--benchmark_out=") +
                       (*it + std::strlen(kJson));
            fmt_flag = "--benchmark_out_format=json";
            it = args.erase(it);
        } else if (std::strncmp(*it, kSlow, std::strlen(kSlow)) == 0) {
            zc::g_inject_slowdown =
                std::max(1, std::atoi(*it + std::strlen(kSlow)));
            it = args.erase(it);
        } else if (std::strncmp(*it, kJobs, std::strlen(kJobs)) == 0 ||
                   std::strcmp(*it, "--no-progress") == 0) {
            it = args.erase(it);
        } else {
            ++it;
        }
    }
    if (!out_flag.empty()) {
        args.push_back(out_flag.data());
        args.push_back(fmt_flag.data());
    }
    int bench_argc = static_cast<int>(args.size());
    benchmark::Initialize(&bench_argc, args.data());
    if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data())) {
        return 1;
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
