/**
 * @file
 * Table II — timing, area and power of L2 bank designs: set-associative
 * caches of 4/8/16/32 ways and zcaches Z4/16, Z4/52 (plus Z2/8 as an
 * extra point), for both serial- and parallel-lookup organizations,
 * from the CACTI-lite analytical model (1 MB bank, 64 B lines, 32 nm,
 * 2 GHz — Table I's bank geometry).
 *
 * Expected shape (paper Section VI-A):
 *  - SA costs climb steeply with ways: 32-way serial ~1.22x area,
 *    ~1.23x latency, ~2x hit energy of 4-way (parallel: ~1.32x latency,
 *    ~3.3x hit energy);
 *  - zcache rows keep their (low) way count's hit costs regardless of
 *    candidates; only E_miss grows, and stays comparable to
 *    same-associativity SA designs.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "cache/walk_timeline.hpp"
#include "cache/z_array.hpp"
#include "energy/cacti_lite.hpp"

#include "bench_util.hpp"

using namespace zc;

namespace {

struct Row
{
    std::string label;
    std::uint32_t ways;
    std::uint32_t candidates; ///< R (== ways for set-associative)
    std::uint32_t levels;     ///< 0 for set-associative
    std::uint32_t extraTagRatio = 1; ///< >1: compressed extra-tag zcache
};

/**
 * Tag storage of the design, in bytes. Compressed extra-tag designs
 * (docs/compression.md) hold extraTagRatio times the tags over the
 * same data store, and each tag carries a stored-size field (8 bits
 * covers sizes up to the 64 B line) plus a data-store offset in
 * 8-byte granules (log2(capacity/8) bits) replacing the implicit
 * way-index addressing of an uncompressed bank.
 */
std::uint64_t
tagStoreBytes(const BankGeometry& g, std::uint32_t extraTagRatio)
{
    std::uint64_t lines = g.capacityBytes / g.lineBytes;
    std::uint64_t bits_per = CactiLite::tagBitsPerLine(g);
    if (extraTagRatio > 1) {
        std::uint32_t offset_bits = 0;
        for (std::uint64_t granules = g.capacityBytes / 8; granules > 1;
             granules >>= 1)
            offset_bits++;
        bits_per += 8 + offset_bits;
    }
    return lines * extraTagRatio * bits_per / 8;
}

void
printTable(bool serial, const std::vector<Row>& rows,
           std::uint64_t bank_bytes, benchutil::JsonReport& report)
{
    benchutil::banner(std::string(serial ? "serial" : "parallel") +
                      "-lookup designs");
    std::printf("%-10s %5s %5s | %8s %8s %7s | %9s %9s | %8s | %7s | %7s %6s\n",
                "design", "ways", "R", "area", "latency", "cycles",
                "E_hit", "E_miss", "leakage", "T_repl", "tags", "tag+");
    std::printf("%-10s %5s %5s | %8s %8s %7s | %9s %9s | %8s | %7s | %7s %6s\n",
                "", "", "", "(mm2)", "(ns)", "@2GHz", "(nJ)", "(nJ)",
                "(mW)", "(cyc)", "(KB)", "(%)");
    for (const auto& r : rows) {
        BankGeometry g;
        g.capacityBytes = bank_bytes;
        g.ways = r.ways;
        g.serialLookup = serial;
        BankCosts c = CactiLite::model(g);
        double e_miss;
        if (r.levels == 0) {
            e_miss = CactiLite::setAssocMissEnergyNj(c, r.ways);
        } else {
            // Average relocations measured in simulation: ~0.7 for
            // 2-level walks, ~1.4 for 3-level.
            double relocs = r.levels == 2 ? 0.7 : (r.levels == 3 ? 1.4 : 0.0);
            e_miss = CactiLite::zcacheMissEnergyNj(c, r.candidates, relocs);
        }
        char t_repl[16] = "-";
        if (r.levels > 0) {
            // Replacement-process latency (off the critical path; must
            // hide under the 200-cycle memory fill).
            auto t = WalkTimelineModel::bfs(r.ways, r.levels, r.levels - 1,
                                            c.hitLatencyCycles,
                                            c.hitLatencyCycles);
            std::snprintf(t_repl, sizeof t_repl, "%u", t.totalCycles);
        }
        std::uint64_t tag_bytes = tagStoreBytes(g, r.extraTagRatio);
        double tag_overhead_pct = 100.0 *
                                  static_cast<double>(tag_bytes) /
                                  static_cast<double>(g.capacityBytes);
        // Extra tags also cost extra walk tag reads' worth of E_miss —
        // already captured by R — but each size-aware eviction beyond
        // the first (makeSpace) re-runs the victim data read + write.
        std::printf("%-10s %5u %5u | %8.3f %8.3f %7u | %9.4f %9.4f | "
                    "%8.1f | %7s | %7.1f %6.2f\n",
                    r.label.c_str(), r.ways, r.candidates, c.areaMm2,
                    c.hitLatencyNs, c.hitLatencyCycles, c.hitEnergyNj,
                    e_miss, c.leakageMw, t_repl,
                    static_cast<double>(tag_bytes) / 1024.0,
                    tag_overhead_pct);
        if (report.enabled()) {
            JsonValue stats = JsonValue::object();
            stats.set("ways", JsonValue(r.ways));
            stats.set("candidates", JsonValue(r.candidates));
            stats.set("area_mm2", JsonValue(c.areaMm2));
            stats.set("hit_latency_ns", JsonValue(c.hitLatencyNs));
            stats.set("hit_latency_cycles", JsonValue(c.hitLatencyCycles));
            stats.set("hit_energy_nj", JsonValue(c.hitEnergyNj));
            stats.set("miss_energy_nj", JsonValue(e_miss));
            stats.set("leakage_mw", JsonValue(c.leakageMw));
            stats.set("extra_tag_ratio",
                      JsonValue(std::uint64_t{r.extraTagRatio}));
            stats.set("tag_bytes", JsonValue(tag_bytes));
            stats.set("tag_overhead_pct", JsonValue(tag_overhead_pct));
            report.add({{"design", JsonValue(r.label)},
                        {"serial_lookup", JsonValue(serial)}},
                       std::move(stats));
        }
    }
}

} // namespace

int
main(int argc, char** argv)
{
    std::uint64_t bank_bytes =
        benchutil::flagU64(argc, argv, "bank-bytes", 1 << 20);
    benchutil::JsonReport report(argc, argv, "table2_cache_costs");
    // --jobs is accepted for driver-interface uniformity (reproduce.sh
    // passes it to every bench) but a closed-form analytical model has
    // no grid to parallelize.
    (void)benchutil::flagU64(argc, argv, "jobs", 0);
    (void)benchutil::flagBool(argc, argv, "no-progress");

    std::vector<Row> rows{
        {"SA-4", 4, 4, 0},
        {"SA-8", 8, 8, 0},
        {"SA-16", 16, 16, 0},
        {"SA-32", 32, 32, 0},
        {"Z2/6", 2, ZArray::nominalCandidates(2, 3), 3},
        {"Z4/16", 4, 16, 2},
        {"Z4/52", 4, 52, 3},
        // Compressed extra-tag variants (docs/compression.md): same
        // walk hardware and hit path as Z4/16; the cost is tag storage
        // (the "tags" columns) plus decompression latency, which sits
        // on the fill path, not the lookup critical path.
        {"CZ4/16x2", 4, 16, 2, 2},
        {"CZ4/16x4", 4, 16, 2, 4},
    };

    std::printf("Table II: L2 bank costs (CACTI-lite, %llu KB bank, 64 B "
                "lines, 32 nm)\n",
                static_cast<unsigned long long>(bank_bytes >> 10));
    printTable(true, rows, bank_bytes, report);
    printTable(false, rows, bank_bytes, report);

    // Headline ratios the paper quotes.
    auto ratio = [&](bool serial, auto field) {
        BankGeometry g4, g32;
        g4.capacityBytes = g32.capacityBytes = bank_bytes;
        g4.ways = 4;
        g32.ways = 32;
        g4.serialLookup = g32.serialLookup = serial;
        return field(CactiLite::model(g32)) / field(CactiLite::model(g4));
    };
    benchutil::banner("headline ratios (32-way SA vs 4-way SA)");
    std::printf("serial  : area %.2fx, latency %.2fx, hit energy %.2fx "
                "(paper: 1.22x, 1.23x, 2x)\n",
                ratio(true, [](const BankCosts& c) { return c.areaMm2; }),
                ratio(true,
                      [](const BankCosts& c) { return c.hitLatencyNs; }),
                ratio(true,
                      [](const BankCosts& c) { return c.hitEnergyNj; }));
    std::printf("parallel: latency %.2fx, hit energy %.2fx "
                "(paper: 1.32x, 3.3x)\n",
                ratio(false,
                      [](const BankCosts& c) { return c.hitLatencyNs; }),
                ratio(false,
                      [](const BankCosts& c) { return c.hitEnergyNj; }));
    std::printf("\nExpected shape: zcache rows keep 4-way (2-way for Z2/8) "
                "hit costs at any R; E_miss grows mildly with R. The "
                "compressed CZ rows pay only in tag storage — a few "
                "percent of bank capacity per extra-tag factor — while "
                "their hit path matches Z4/16.\n");
    return report.writeIfRequested() ? 0 : 1;
}
